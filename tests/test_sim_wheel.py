"""Unit and property tests for the hierarchical timing wheel.

The wheel (repro.sim.wheel) stages cancellable timers in front of the
dispatch heap; its contract is that enabling it changes *nothing* about
what fires when — only what schedule/cancel cost.  The property test at
the bottom hammers exactly that: a random interleaving of schedules,
cancels, re-arms, and time advances must produce an identical firing
history with the wheel on and off.
"""

import random

import pytest

from repro.sim import Simulator
from repro.sim.wheel import TimingWheel


def test_wheel_rejects_bad_tick():
    with pytest.raises(ValueError):
        TimingWheel(0.0, object)
    with pytest.raises(ValueError):
        TimingWheel(-1.0, object)


def test_simulator_wheel_flag_and_env(monkeypatch):
    assert Simulator().wheel_enabled
    assert not Simulator(wheel=False).wheel_enabled
    monkeypatch.setenv("REPRO_NO_WHEEL", "1")
    assert not Simulator().wheel_enabled
    # An explicit argument beats the environment.
    assert Simulator(wheel=True).wheel_enabled


def test_timer_fires_with_args():
    sim = Simulator()
    fired = []
    timer = sim.schedule_timer(3.0, lambda a, b: fired.append((sim.now, a, b)),
                               "x", 7)
    assert timer.active
    sim.run()
    assert fired == [(3.0, "x", 7)]
    assert not timer.active


def test_timer_cancel_wheel_resident():
    sim = Simulator()
    fired = []
    timer = sim.schedule_timer(5.0, fired.append, 1)
    assert len(sim._wheel) == 1
    assert timer.cancel() is True
    assert timer.cancel() is False  # idempotent
    assert len(sim._wheel) == 0
    sim.run()
    assert fired == []
    stats = sim.timer_stats()
    assert stats["wheel_cancelled"] == 1
    assert stats["tombstones"] == 0  # true cancel leaves no heap trace


def test_timer_cancel_heap_resident():
    sim = Simulator()
    fired = []
    timer = sim.schedule_timer(0.1, fired.append, 1)  # sub-tick -> heap
    assert len(sim._wheel) == 0
    assert timer.cancel() is True
    sim.run()
    assert fired == []
    assert sim.timer_stats()["wheel_cancelled"] == 0


def test_timer_cancel_after_fire_is_false():
    sim = Simulator()
    timer = sim.schedule_timer(1.0, lambda: None)
    sim.run()
    assert timer.cancel() is False


def test_timer_rearm_supersedes_pending_firing():
    sim = Simulator()
    fired = []
    timer = sim.schedule_timer(5.0, fired.append, "a")
    assert timer.rearm(9.0, "b") is timer
    sim.run()
    assert fired == [("b")] and sim.now == 9.0


def test_timer_rearm_revives_after_fire_and_cancel():
    sim = Simulator()
    fired = []
    timer = sim.schedule_timer(1.0, fired.append, "a")
    sim.run()
    timer.rearm(2.0, "b")  # fired -> fresh placement
    sim.run()
    timer.rearm(3.0, "c")
    timer.cancel()
    timer.rearm(4.0, "d")  # cancelled -> fresh placement
    sim.run()
    assert fired == ["a", "b", "d"]


def test_timer_rearm_crosses_wheel_heap_boundary():
    sim = Simulator()
    fired = []
    timer = sim.schedule_timer(15.0, fired.append, "long")
    timer.rearm(0.01, "short")  # wheel node -> sub-tick heap entry
    sim.run()
    timer.rearm(15.0, "long2")  # heap history -> wheel node again
    sim.run()
    assert fired == ["short", "long2"]
    assert sim.now == pytest.approx(0.01 + 15.0)


def test_timer_rearm_rejects_negative_delay():
    sim = Simulator()
    timer = sim.schedule_timer(1.0, lambda: None)
    with pytest.raises(Exception):
        timer.rearm(-0.5)


def test_wheel_multi_level_cascade():
    sim = Simulator()
    fired = []
    # Level 0 (seconds), level 1 (minutes), level 2 (hours): the coarse
    # entries must cascade down as their slots are reached, never fire
    # early or late.
    delays = [2.0, 45.0, 4000.0]
    for d in delays:
        sim.schedule_timer(d, fired.append, d)
    sim.run()
    assert fired == sorted(delays)
    assert sim.now == max(delays)
    assert sim.timer_stats()["wheel_cascaded"] > 0


def test_wheel_beyond_horizon_falls_back_to_heap():
    sim = Simulator()
    fired = []
    delays = [2.0, 45.0, 4000.0, 500_000.0]  # last is past the horizon
    for d in delays:
        sim.schedule_timer(d, fired.append, d)
    assert len(sim._wheel) == 3  # the far-future timer went to the heap
    sim.run()
    # The heap entry at 500000 makes the dispatch loop flush the whole
    # wheel up front (early flush into the heap is always safe — the
    # heap restores the order); everything still fires in time order.
    assert fired == sorted(delays)
    assert sim.now == max(delays)


def test_wheel_equal_time_preserves_schedule_order():
    sim = Simulator()
    fired = []
    # Same deadline via the wheel (long) and the heap (short, scheduled
    # from a later start): sequence numbers must break the tie.
    sim.schedule_timer(4.0, fired.append, "wheel-first")
    sim.call_later(4.0, fired.append, "heap-second")
    sim.schedule_timer(4.0, fired.append, "wheel-third")
    sim.run()
    assert fired == ["wheel-first", "heap-second", "wheel-third"]


def test_timeout_cancel_true_cancels_on_wheel():
    sim = Simulator()
    ev = sim.timeout(10.0)
    assert ev._node is not None
    assert ev.cancel() is True
    assert ev.cancel() is False
    assert len(sim._wheel) == 0
    sim.run()
    assert sim.now == 0.0  # nothing left to dispatch


def test_timeout_cancel_tombstones_on_heap():
    sim = Simulator(wheel=False)
    ev = sim.timeout(10.0)
    assert ev._node is None
    assert ev.cancel() is True
    assert sim.timer_stats()["tombstones"] == 1
    sim.run()
    assert sim.now == 10.0  # the tombstone still pops (sequence slot kept)


def test_tombstone_compaction_bounds_heap_growth():
    sim = Simulator(wheel=False)
    for _ in range(1000):
        sim.timeout(50.0).cancel()
    stats = sim.timer_stats()
    assert stats["tombstones_compacted"] >= 1
    # Without compaction the heap would hold ~1000 dead entries.
    assert stats["heap_pending"] < 200


def test_peek_sees_wheel_residents():
    sim = Simulator()
    sim.schedule_timer(7.25, lambda: None)
    assert sim.peek() == pytest.approx(7.25)


def test_timer_stats_accounting():
    sim = Simulator()
    t1 = sim.schedule_timer(5.0, lambda: None)
    sim.schedule_timer(6.0, lambda: None)
    t1.cancel()
    sim.run()
    stats = sim.timer_stats()
    assert stats["wheel_enabled"] is True
    assert stats["wheel_scheduled"] == 2
    assert stats["wheel_cancelled"] == 1
    assert stats["wheel_flushed"] == 1
    assert stats["wheel_pending"] == 0


# ---------------------------------------------------------------------------
# Property: wheel on == wheel off, for arbitrary op interleavings.
# ---------------------------------------------------------------------------


def _random_history(seed: int, wheel: bool, ops: int = 400):
    """Replay a seed-determined op sequence; return the firing history."""
    rng = random.Random(seed)
    sim = Simulator(wheel=wheel)
    fired = []
    live = []  # Timer handles that may still be pending
    timeouts = []  # cancellable Timeout events

    for step in range(ops):
        roll = rng.random()
        if roll < 0.40:
            delay = rng.choice(
                [0.05, 0.3, 0.9, 2.7, 15.0, 40.0, 90.0, 3000.0, 200_000.0]
            )
            idx = step  # unique label
            live.append(sim.schedule_timer(delay, fired.append, idx))
        elif roll < 0.55 and live:
            live.pop(rng.randrange(len(live))).cancel()
        elif roll < 0.70 and live:
            timer = live[rng.randrange(len(live))]
            timer.rearm(rng.choice([0.1, 1.5, 16.0, 64.0]), (step, "rearm"))
        elif roll < 0.80:
            ev = sim.timeout(rng.choice([0.2, 5.0, 33.0]))
            ev.callbacks.append(
                lambda e, i=step: fired.append((i, "timeout"))
            )
            timeouts.append(ev)
        elif roll < 0.90 and timeouts:
            timeouts.pop(rng.randrange(len(timeouts))).cancel()
        else:
            sim.run(until=sim.now + rng.choice([0.1, 0.7, 3.0, 21.0]))
        fired.append(("now", round(sim.now, 9)))
    # Drain with an explicit bound covering every delay above: a bare
    # run() would end at the last *entry* popped, and in heap-only mode
    # that can be a cancelled timer's tombstone — the clocks (not the
    # firings) would then differ.  See DESIGN.md §9.
    sim.run(until=2_000_000.0)
    fired.append(("end", round(sim.now, 9)))
    return fired


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 17])
def test_property_wheel_matches_heap_firing_order(seed):
    assert _random_history(seed, wheel=True) == _random_history(
        seed, wheel=False
    )
