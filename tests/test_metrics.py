"""Unit tests for metrics collectors and run reports."""

import pytest

from repro.metrics import (
    CLIENT_TIMEOUT,
    CONNECTION_RESET,
    IntervalSeries,
    MetricsHub,
    RunMetrics,
    StatAccumulator,
    format_table,
)
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# StatAccumulator
# ---------------------------------------------------------------------------

def test_accumulator_basic_stats():
    acc = StatAccumulator()
    for v in (1.0, 2.0, 3.0, 4.0):
        acc.add(v)
    assert acc.count == 4
    assert acc.mean == 2.5
    assert acc.min == 1.0
    assert acc.max == 4.0
    assert acc.percentile(50) == pytest.approx(2.5)


def test_accumulator_empty():
    acc = StatAccumulator()
    assert acc.mean == 0.0
    assert acc.std == 0.0
    assert acc.percentile(99) == 0.0
    summary = acc.summary()
    assert summary["count"] == 0
    assert summary["min"] == 0.0


def test_accumulator_std():
    acc = StatAccumulator()
    for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
        acc.add(v)
    assert acc.std == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# IntervalSeries
# ---------------------------------------------------------------------------

def test_interval_series_rates():
    s = IntervalSeries(bin_width=1.0)
    for t in (0.1, 0.5, 1.2, 3.9):
        s.add(t)
    assert s.rates() == [2.0, 1.0, 0.0, 1.0]


def test_interval_series_cov_steady_vs_bursty():
    steady = IntervalSeries()
    bursty = IntervalSeries()
    for i in range(10):
        steady.add(i + 0.5, 10)
        bursty.add(i + 0.5, 20 if i % 2 == 0 else 1)
    assert steady.coefficient_of_variation() == pytest.approx(0.0)
    assert bursty.coefficient_of_variation() > 0.5


def test_interval_series_empty():
    assert IntervalSeries().rates() == []
    assert IntervalSeries().coefficient_of_variation() == 0.0


# ---------------------------------------------------------------------------
# MetricsHub
# ---------------------------------------------------------------------------

def test_hub_window_gating():
    sim = Simulator()
    hub = MetricsHub(sim, warmup=5.0, duration=10.0)
    # Before the window: ignored.
    hub.record_reply(0.1, 0.05, 1000)
    hub.record_error(CLIENT_TIMEOUT)
    assert hub.replies == 0
    assert hub.errors == {}
    # Inside the window: counted.
    sim.run(until=7.0)
    hub.record_reply(0.1, 0.05, 1000)
    hub.record_error(CONNECTION_RESET)
    hub.record_connection(0.001)
    hub.record_session()
    assert hub.replies == 1
    assert hub.errors[CONNECTION_RESET] == 1
    assert hub.connections_established == 1
    assert hub.sessions_completed == 1
    # After the window: ignored again.
    sim.run(until=20.0)
    hub.record_reply(0.1, 0.05, 1000)
    assert hub.replies == 1


def test_hub_rates():
    sim = Simulator()
    hub = MetricsHub(sim, warmup=0.0, duration=10.0)
    for _ in range(50):
        hub.record_reply(0.2, 0.1, 2000)
    hub.record_error(CLIENT_TIMEOUT)
    assert hub.throughput_rps == 5.0
    assert hub.error_rate(CLIENT_TIMEOUT) == 0.1
    assert hub.bandwidth_bytes_per_s == pytest.approx(10_000.0)


def test_hub_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        MetricsHub(sim, warmup=-1.0, duration=10.0)
    with pytest.raises(ValueError):
        MetricsHub(sim, warmup=0.0, duration=0.0)


# ---------------------------------------------------------------------------
# RunMetrics / format_table
# ---------------------------------------------------------------------------

def make_run_metrics():
    sim = Simulator()
    hub = MetricsHub(sim, warmup=0.0, duration=10.0)
    for i in range(100):
        hub.record_reply(0.05 + i * 0.001, 0.02, 15_000)
    hub.record_error(CLIENT_TIMEOUT)
    hub.record_connection(0.0004)
    return RunMetrics.from_hub(
        hub, clients=600, cpu_utilization=0.42,
        server_stats={"pool_size": 896},
    )


def test_run_metrics_snapshot():
    m = make_run_metrics()
    assert m.clients == 600
    assert m.replies == 100
    assert m.throughput_rps == 10.0
    assert m.client_timeout_rate == pytest.approx(0.1)
    assert m.connection_reset_rate == 0.0
    assert m.cpu_utilization == 0.42
    assert m.server_stats["pool_size"] == 896
    assert m.bandwidth_mbytes_per_s == pytest.approx(0.15)


def test_run_metrics_row_columns():
    row = make_run_metrics().row()
    for col in ("clients", "replies/s", "resp_ms", "conn_ms",
                "timeout/s", "reset/s", "MB/s", "cpu%"):
        assert col in row


def test_format_table_alignment():
    rows = [{"a": 1, "bb": "xy"}, {"a": 222, "bb": "z"}]
    out = format_table(rows, title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5
    # All body lines aligned to the same width.
    assert len(set(len(l) for l in lines[1:])) == 1


def test_format_table_empty():
    assert "(no data)" in format_table([], title="x")


# ---------------------------------------------------------------------------
# StatAccumulator reservoir sampling
# ---------------------------------------------------------------------------

def test_accumulator_reservoir_caps_samples():
    from repro.metrics.collectors import _MAX_SAMPLES

    acc = StatAccumulator()
    n = _MAX_SAMPLES + 10_000
    for i in range(n):
        acc.add(float(i))
    # Exact statistics are unaffected by the reservoir.
    assert acc.count == n
    assert acc.min == 0.0
    assert acc.max == float(n - 1)
    assert acc.mean == pytest.approx((n - 1) / 2.0)
    # Retention is capped; the overflow is counted, not silently lost.
    assert len(acc._samples) == _MAX_SAMPLES
    assert acc.samples_dropped == 10_000
    assert acc.summary()["samples_dropped"] == 10_000
    # A uniform reservoir over 0..n keeps quantiles roughly in place.
    assert acc.percentile(50) == pytest.approx(n / 2, rel=0.05)


def test_accumulator_reservoir_is_seeded():
    a, b = StatAccumulator(), StatAccumulator()
    from repro.metrics.collectors import _MAX_SAMPLES

    for i in range(_MAX_SAMPLES + 500):
        a.add(float(i))
        b.add(float(i))
    assert a._samples == b._samples  # same seed -> same reservoir


def test_accumulator_no_drops_below_cap():
    acc = StatAccumulator()
    for v in (1.0, 2.0, 3.0):
        acc.add(v)
    assert acc.samples_dropped == 0
    assert acc.summary()["samples_dropped"] == 0


# ---------------------------------------------------------------------------
# trace-event surfacing in RunMetrics
# ---------------------------------------------------------------------------

def test_run_metrics_trace_columns_absent_by_default():
    row = make_run_metrics().row()
    assert "trace_ev" not in row
    assert "trace_drop" not in row


def test_run_metrics_trace_columns():
    sim = Simulator()
    hub = MetricsHub(sim, warmup=0.0, duration=10.0)
    hub.record_reply(0.05, 0.02, 15_000)
    m = RunMetrics.from_hub(
        hub, clients=60, cpu_utilization=0.1, server_stats={},
        trace_dropped=3,
        trace_counts={"conn": 40, "http": 60},
    )
    assert m.trace_dropped == 3
    assert m.trace_counts == {"conn": 40, "http": 60}
    row = m.row()
    assert row["trace_ev"] == 100
    assert row["trace_drop"] == 3
    assert "trace_ev" in format_table([row])
