"""Unit/integration tests for the TCP connection model."""

import pytest

from repro.net import (
    EOF,
    ConnectTimeout,
    Connection,
    ListenSocket,
    ResetByServer,
    ResponseTimeout,
)
from repro.net.link import DuplexLink
from repro.osmodel import Machine, MachineSpec
from repro.sim import Simulator


class FakeRequest:
    """Minimal request carrier for transport tests."""

    wire_bytes = 300

    def __init__(self, tag="req"):
        self.tag = tag


def make_testbed(backlog=511, bandwidth=1e7, latency=0.001):
    sim = Simulator()
    machine = Machine(sim, MachineSpec(cpus=1))
    listener = ListenSocket(sim, machine, backlog=backlog)
    duplex = DuplexLink(sim, bandwidth, latency)
    return sim, machine, listener, duplex


def connect_ok(sim, listener, duplex, timeout=10.0):
    conn = Connection(sim, duplex, listener)
    proc = sim.process(conn.connect(timeout))
    return conn, proc


# ---------------------------------------------------------------------------
# handshake
# ---------------------------------------------------------------------------

def test_handshake_completes_quickly_with_room():
    sim, _machine, listener, duplex = make_testbed()
    conn, proc = connect_ok(sim, listener, duplex)
    conn_time = sim.run_process(proc)
    assert conn.established
    # One RTT: SYN up + SYN-ACK down (plus negligible serialization).
    assert conn_time == pytest.approx(duplex.rtt, rel=0.2)
    assert listener.backlog_depth == 1
    assert listener.handshakes_completed == 1


def test_connection_time_metric_recorded():
    sim, _machine, listener, duplex = make_testbed()
    conn, proc = connect_ok(sim, listener, duplex)
    sim.run_process(proc)
    assert conn.established_at is not None
    assert conn.connect_started == 0.0


def test_backlog_full_drops_syn_and_retry_succeeds():
    sim, _machine, listener, duplex = make_testbed(backlog=1)
    # Fill the backlog with a connection nobody accepts.
    first, p1 = connect_ok(sim, listener, duplex)
    sim.run_process(p1)
    # Second connect: first SYN dropped; a retry succeeds after the
    # backlog frees (we accept the first at t=1).
    second, p2 = connect_ok(sim, listener, duplex)

    def drain():
        yield sim.timeout(1.0)
        got = yield sim.process(listener.accept())
        assert got is first

    sim.process(drain())
    conn_time = sim.run_process(p2)
    assert second.established
    # Establishment required at least one 3 s SYN retransmission.
    assert conn_time >= 3.0
    assert listener.syns_dropped >= 1


def test_connect_timeout_when_backlog_never_frees():
    sim, _machine, listener, duplex = make_testbed(backlog=1)
    _first, p1 = connect_ok(sim, listener, duplex)
    sim.run_process(p1)
    second, p2 = connect_ok(sim, listener, duplex, timeout=10.0)
    with pytest.raises(ConnectTimeout):
        sim.run_process(p2)
    assert sim.now == pytest.approx(10.0, abs=0.1)
    assert second.client_closed


def test_reject_charges_cpu():
    sim, machine, listener, duplex = make_testbed(backlog=1)
    _first, p1 = connect_ok(sim, listener, duplex)
    sim.run_process(p1)
    _second, p2 = connect_ok(sim, listener, duplex, timeout=4.0)
    with pytest.raises(ConnectTimeout):
        sim.run_process(p2)
    assert machine.cpu.total_cost > 0  # reject path cost


def test_aborted_connect_is_skipped_by_accept():
    sim, machine, listener, duplex = make_testbed(backlog=16)
    conn, proc = connect_ok(sim, listener, duplex)
    sim.run_process(proc)
    # Client gives up before the app accepts; RST kills the backlog entry.
    conn.client_closed = True
    conn.dead = True
    acceptor_result = []

    def do_accept():
        got = yield sim.process(listener.accept())
        acceptor_result.append(got)

    # A healthy second connection arrives and must be the one accepted.
    healthy, p2 = connect_ok(sim, listener, duplex)
    sim.run_process(p2)
    sim.process(do_accept())
    sim.run()
    assert acceptor_result == [healthy]
    assert listener.dead_on_accept == 1
    assert machine.memory.used_bytes == listener.kernel_bytes_per_conn


# ---------------------------------------------------------------------------
# request / response
# ---------------------------------------------------------------------------

def serve_one(sim, listener, response_bytes=8000, chunk=4096, close_after=False):
    """Minimal server: accept one conn, answer every request."""

    def server():
        conn = yield sim.process(listener.accept())
        while True:
            req = yield from conn.server_recv()
            if req is EOF:
                conn.server_close()
                return
            remaining = response_bytes
            while remaining > 0:
                n = min(chunk, remaining)
                yield from conn.wait_writable(n)
                if not conn.peer_alive:
                    conn.server_close()
                    return
                conn.server_send_chunk(n, last=(remaining - n == 0))
                remaining -= n
            if close_after:
                conn.server_close()
                return

    return sim.process(server())


def test_request_response_roundtrip():
    sim, _machine, listener, duplex = make_testbed()
    serve_one(sim, listener, response_bytes=8000)
    results = []

    def client():
        conn = Connection(sim, duplex, listener)
        yield from conn.connect()
        pending = yield from conn.send_request(FakeRequest())
        done_at = yield from conn.await_response(pending)
        results.append((done_at, pending.bytes_received))
        conn.client_close()

    sim.process(client())
    sim.run(until=5.0)
    assert len(results) == 1
    assert results[0][1] == 8000


def test_pipelined_requests_complete_in_order():
    sim, _machine, listener, duplex = make_testbed()
    serve_one(sim, listener, response_bytes=4000)
    order = []

    def client():
        conn = Connection(sim, duplex, listener)
        yield from conn.connect()
        p1 = yield from conn.send_request(FakeRequest("a"))
        p2 = yield from conn.send_request(FakeRequest("b"))
        t1 = yield from conn.await_response(p1)
        t2 = yield from conn.await_response(p2)
        order.append((t1, t2))
        conn.client_close()

    sim.process(client())
    sim.run(until=5.0)
    (t1, t2), = order
    assert t1 <= t2


def test_send_after_server_close_raises_reset():
    sim, _machine, listener, duplex = make_testbed()
    serve_one(sim, listener, response_bytes=1000, close_after=True)
    outcomes = []

    def client():
        conn = Connection(sim, duplex, listener)
        yield from conn.connect()
        p1 = yield from conn.send_request(FakeRequest())
        yield from conn.await_response(p1)
        yield sim.timeout(1.0)  # think; server already closed
        try:
            yield from conn.send_request(FakeRequest())
        except ResetByServer:
            outcomes.append("reset")

    sim.process(client())
    sim.run(until=10.0)
    assert outcomes == ["reset"]


def test_idle_timeout_recv_returns_none():
    sim, _machine, listener, duplex = make_testbed()
    reaped = []

    def server():
        conn = yield sim.process(listener.accept())
        req = yield from conn.server_recv(idle_timeout=2.0)
        reaped.append(req)
        conn.server_close()

    sim.process(server())

    def client():
        conn = Connection(sim, duplex, listener)
        yield from conn.connect()
        # Never send anything: the server should reap at ~2 s.

    sim.process(client())
    sim.run(until=5.0)
    assert reaped == [None]


def test_client_close_delivers_eof():
    sim, _machine, listener, duplex = make_testbed()
    got = []

    def server():
        conn = yield sim.process(listener.accept())
        req = yield from conn.server_recv()
        got.append(req)
        conn.server_close()

    sim.process(server())

    def client():
        conn = Connection(sim, duplex, listener)
        yield from conn.connect()
        conn.client_close()

    sim.process(client())
    sim.run(until=5.0)
    assert got == [EOF]


def test_response_timeout_when_server_never_replies():
    sim, _machine, listener, duplex = make_testbed()

    def server():
        conn = yield sim.process(listener.accept())
        yield from conn.server_recv()
        yield sim.timeout(100.0)  # never reply

    sim.process(server())
    outcomes = []

    def client():
        conn = Connection(sim, duplex, listener)
        yield from conn.connect()
        pending = yield from conn.send_request(FakeRequest())
        try:
            yield from conn.await_response(pending, ttfb_timeout=3.0)
        except ResponseTimeout:
            outcomes.append(sim.now)
        conn.client_close()

    sim.process(client())
    sim.run(until=20.0)
    assert len(outcomes) == 1
    assert outcomes[0] == pytest.approx(3.0, abs=0.1)


def test_send_buffer_backpressure_blocks_writer():
    sim, _machine, listener, duplex = make_testbed(bandwidth=1000.0)
    # Slow link: 64 KB sndbuf fills; writer must block in wait_writable.
    progress = []

    def server():
        conn = yield sim.process(listener.accept())
        req = yield from conn.server_recv()
        assert req is not EOF
        total = 200 * 1024
        chunk = 16 * 1024
        sent = 0
        while sent < total:
            yield from conn.wait_writable(chunk)
            if not conn.peer_alive:
                break
            conn.server_send_chunk(chunk, last=(sent + chunk >= total))
            sent += chunk
            progress.append((sim.now, conn.in_flight))
        conn.server_close()

    sim.process(server())

    def client():
        conn = Connection(sim, duplex, listener)
        yield from conn.connect()
        pending = yield from conn.send_request(FakeRequest())
        yield from conn.await_response(pending, ttfb_timeout=1e6, stall_timeout=1e6)
        conn.client_close()

    sim.process(client())
    sim.run()
    # in-flight never exceeded the send buffer
    assert max(in_flight for _t, in_flight in progress) <= 64 * 1024


def test_wasted_bytes_when_client_abandons():
    sim, _machine, listener, duplex = make_testbed(bandwidth=2000.0)
    serve_one(sim, listener, response_bytes=8000, chunk=2000)

    def client():
        conn = Connection(sim, duplex, listener)
        yield from conn.connect()
        pending = yield from conn.send_request(FakeRequest())
        try:
            yield from conn.await_response(pending, ttfb_timeout=0.5)
        except ResponseTimeout:
            pass
        conn.client_close()

    sim.process(client())
    sim.run(until=30.0)
    # Some response bytes crossed the link even though the client left.
    assert duplex.down.bytes_sent > 0


def test_kernel_memory_freed_on_close():
    sim, machine, listener, duplex = make_testbed()
    serve_one(sim, listener, response_bytes=1000, close_after=True)

    def client():
        conn = Connection(sim, duplex, listener)
        yield from conn.connect()
        pending = yield from conn.send_request(FakeRequest())
        yield from conn.await_response(pending)
        conn.client_close()

    sim.process(client())
    sim.run(until=5.0)
    assert machine.memory.used_bytes == 0
