"""Determinism pinning: kernel variants must not change any result.

The timing wheel's whole license to exist is that it stages timers in
front of the dispatch heap without perturbing ``(time, seq)`` order
(DESIGN.md §9), and the turbo backend's license is the same claim for
its compiled dispatch loop and vectorized bulk flush (DESIGN.md §14).
These tests run complete experiments — client workload, TCP model,
server architecture, metrics pipeline — once per kernel variant and
require the *entire* RunMetrics row to be identical, not approximately
equal.  Any divergence means an event fired in a different order
between the variants.
"""

import pytest

from repro.core.experiment import Experiment
from repro.core.params import ServerSpec, WorkloadSpec
from repro.net.topology import NetworkSpec
from repro.osmodel.machine import MachineSpec
from repro.sim.turbo import extension_available

#: Architecture x scenario grid: the two servers with the heaviest and
#: lightest wheel traffic (httpd arms a reap timer per idle connection;
#: nio arms none of its own), each on a uniprocessor gigabit testbed and
#: a 4-way SMP fast-ethernet one (different event interleavings, link
#: congestion, and CPU timer churn).
GRID = [
    ("httpd-up-1g", ServerSpec.httpd(64), MachineSpec(cpus=1), "gigabit"),
    ("httpd-smp-100m", ServerSpec.httpd(64), MachineSpec(cpus=4),
     "fast_ethernet"),
    ("nio-up-1g", ServerSpec.nio(1), MachineSpec(cpus=1), "gigabit"),
    ("nio-smp-100m", ServerSpec.nio(1), MachineSpec(cpus=4),
     "fast_ethernet"),
]


def _run(spec, machine, network, monkeypatch, no_wheel,
         backend=None, no_batch=False):
    if no_wheel:
        monkeypatch.setenv("REPRO_NO_WHEEL", "1")
    else:
        monkeypatch.delenv("REPRO_NO_WHEEL", raising=False)
    if backend is None:
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
    else:
        monkeypatch.setenv("REPRO_KERNEL", backend)
    if no_batch:
        monkeypatch.setenv("REPRO_NO_BATCH", "1")
    else:
        monkeypatch.delenv("REPRO_NO_BATCH", raising=False)
    metrics = Experiment(
        server=spec,
        workload=WorkloadSpec(clients=96, duration=3.0, warmup=1.5),
        machine=machine,
        network=getattr(NetworkSpec, network)(),
        seed=7,
    ).run()
    return metrics.row()


@pytest.mark.parametrize(
    "label,spec,machine,network",
    GRID,
    ids=[g[0] for g in GRID],
)
def test_run_metrics_identical_with_and_without_wheel(
    label, spec, machine, network, monkeypatch
):
    wheel_row = _run(spec, machine, network, monkeypatch, no_wheel=False)
    heap_row = _run(spec, machine, network, monkeypatch, no_wheel=True)
    assert wheel_row == heap_row
    # And the run did something: a row of zeros would pass vacuously.
    assert wheel_row["replies/s"] > 0 or wheel_row["clients"] > 0


@pytest.mark.skipif(
    not extension_available(),
    reason="compiled turbo extension not built",
)
@pytest.mark.parametrize(
    "label,spec,machine,network",
    GRID,
    ids=[g[0] for g in GRID],
)
def test_run_metrics_identical_across_backends(
    label, spec, machine, network, monkeypatch
):
    """Backend equivalence matrix: wheel on/off x python/turbo.

    Every leg — including the compiled dispatch loop with and without
    the numpy bulk-flush tier — must produce the byte-identical
    RunMetrics row.
    """
    legs = {
        "python-wheel": dict(no_wheel=False, backend="python"),
        "python-heap": dict(no_wheel=True, backend="python"),
        "turbo-wheel": dict(no_wheel=False, backend="turbo"),
        "turbo-heap": dict(no_wheel=True, backend="turbo"),
        "turbo-wheel-nobatch": dict(
            no_wheel=False, backend="turbo", no_batch=True
        ),
    }
    rows = {
        name: _run(spec, machine, network, monkeypatch, **kw)
        for name, kw in legs.items()
    }
    reference = rows["python-wheel"]
    assert reference["replies/s"] > 0 or reference["clients"] > 0
    for name, row in rows.items():
        assert row == reference, f"leg {name} diverged from python-wheel"
