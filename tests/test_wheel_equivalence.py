"""Determinism pinning: the timing wheel must not change any result.

The wheel's whole license to exist is that it stages timers in front of
the dispatch heap without perturbing ``(time, seq)`` order (DESIGN.md
§9).  These tests run complete experiments — client workload, TCP model,
server architecture, metrics pipeline — twice, with the wheel enabled
and with ``REPRO_NO_WHEEL=1``, and require the *entire* RunMetrics row
to be identical, not approximately equal.  Any divergence means a timer
fired in a different order between the modes.
"""

import pytest

from repro.core.experiment import Experiment
from repro.core.params import ServerSpec, WorkloadSpec
from repro.net.topology import NetworkSpec
from repro.osmodel.machine import MachineSpec

#: Architecture x scenario grid: the two servers with the heaviest and
#: lightest wheel traffic (httpd arms a reap timer per idle connection;
#: nio arms none of its own), each on a uniprocessor gigabit testbed and
#: a 4-way SMP fast-ethernet one (different event interleavings, link
#: congestion, and CPU timer churn).
GRID = [
    ("httpd-up-1g", ServerSpec.httpd(64), MachineSpec(cpus=1), "gigabit"),
    ("httpd-smp-100m", ServerSpec.httpd(64), MachineSpec(cpus=4),
     "fast_ethernet"),
    ("nio-up-1g", ServerSpec.nio(1), MachineSpec(cpus=1), "gigabit"),
    ("nio-smp-100m", ServerSpec.nio(1), MachineSpec(cpus=4),
     "fast_ethernet"),
]


def _run(spec, machine, network, monkeypatch, no_wheel):
    if no_wheel:
        monkeypatch.setenv("REPRO_NO_WHEEL", "1")
    else:
        monkeypatch.delenv("REPRO_NO_WHEEL", raising=False)
    metrics = Experiment(
        server=spec,
        workload=WorkloadSpec(clients=96, duration=3.0, warmup=1.5),
        machine=machine,
        network=getattr(NetworkSpec, network)(),
        seed=7,
    ).run()
    return metrics.row()


@pytest.mark.parametrize(
    "label,spec,machine,network",
    GRID,
    ids=[g[0] for g in GRID],
)
def test_run_metrics_identical_with_and_without_wheel(
    label, spec, machine, network, monkeypatch
):
    wheel_row = _run(spec, machine, network, monkeypatch, no_wheel=False)
    heap_row = _run(spec, machine, network, monkeypatch, no_wheel=True)
    assert wheel_row == heap_row
    # And the run did something: a row of zeros would pass vacuously.
    assert wheel_row["replies/s"] > 0 or wheel_row["clients"] > 0
