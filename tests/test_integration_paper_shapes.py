"""Integration tests: the paper's qualitative results at miniature scale.

These shrink the testbed (``MachineSpec.cpu_speed`` well below 1, small
client counts, narrow links) so the saturation/overload regimes of the
paper appear within seconds of simulated time — and assert the claims
each figure makes.  The full-scale equivalents live in ``benchmarks/``.
"""

import pytest

from repro.core import (
    Scenario,
    ServerSpec,
    find_crossover,
    sweep_clients,
)
from repro.net import LinkSpec, NetworkSpec
from repro.osmodel import MachineSpec

#: ~5% of the calibrated CPU: saturates around 150 replies/s.
SLOW_UP = Scenario(
    "mini-UP", MachineSpec(cpus=1, cpu_speed=0.05), NetworkSpec.gigabit()
)
SLOW_SMP = Scenario(
    "mini-SMP", MachineSpec(cpus=4, cpu_speed=0.05), NetworkSpec.gigabit()
)
#: A narrow link that saturates long before the CPU does.
NARROW_NET = Scenario(
    "mini-100M",
    MachineSpec(cpus=1, cpu_speed=0.05),
    NetworkSpec("mini-wire", (LinkSpec(4e6),)),
)

CLIENTS = (20, 80, 160, 240, 320)


def mini_sweep(spec, scenario, clients=CLIENTS, seed=42):
    return sweep_clients(
        spec,
        scenario,
        clients,
        duration=12.0,
        warmup=16.0,
        seed=seed,
        workload_overrides={"n_files": 200},
    )


@pytest.fixture(scope="module")
def nio_up():
    return mini_sweep(ServerSpec.nio(1), SLOW_UP)


@pytest.fixture(scope="module")
def httpd_up():
    return mini_sweep(ServerSpec.httpd(256), SLOW_UP)


# ---------------------------------------------------------------------------
# figure 1/2 shapes: throughput parity, response-time asymmetry
# ---------------------------------------------------------------------------

def test_fig1_shape_nio_matches_httpd_peak(nio_up, httpd_up):
    assert nio_up.peak_throughput >= 0.8 * httpd_up.peak_throughput


def test_fig1_shape_throughput_rises_then_saturates(nio_up):
    t = nio_up.throughputs
    assert t[1] > 1.5 * t[0]  # linear region
    assert t[-1] <= t[-2] * 1.25  # saturated region flattens


def test_fig2_shape_nio_response_time_grows_with_load(nio_up):
    rt = nio_up.response_times_ms
    assert rt[-1] > 5 * rt[0]


def test_fig2_shape_httpd_measured_rt_below_nio_at_saturation(nio_up, httpd_up):
    assert httpd_up.response_times_ms[-1] < nio_up.response_times_ms[-1]


# ---------------------------------------------------------------------------
# figure 3 shapes: error structure
# ---------------------------------------------------------------------------

def test_fig3_shape_nio_has_zero_resets(nio_up):
    assert all(r == 0.0 for r in nio_up.connection_reset_rates)


def test_fig3_shape_httpd_resets_grow_with_clients(httpd_up):
    resets = httpd_up.connection_reset_rates
    assert max(resets) > 0.0
    assert resets[-1] >= resets[0]


def test_fig3_shape_httpd_more_timeouts_than_nio(nio_up, httpd_up):
    assert sum(httpd_up.client_timeout_rates) >= sum(nio_up.client_timeout_rates)


# ---------------------------------------------------------------------------
# figure 4 shapes: connection time
# ---------------------------------------------------------------------------

def test_fig4_shape_nio_connection_time_flat(nio_up):
    conn_ms = nio_up.connection_times_ms
    assert all(v < 1.0 for v in conn_ms)


def test_fig4_shape_httpd_conn_time_blows_past_pool():
    # Pool of 64 threads, small backlog: beyond ~64 clients the SYN queue
    # overflows and connection time jumps by TCP retransmission periods.
    sweep = mini_sweep(
        ServerSpec("httpd", 64, backlog=16), SLOW_UP, clients=(30, 240)
    )
    below, above = sweep.connection_times_ms
    assert above > 100 * max(below, 0.1)


# ---------------------------------------------------------------------------
# figure 5/6 shapes: bandwidth-bounded vs CPU-bounded
# ---------------------------------------------------------------------------

def test_fig5_shape_bandwidth_ceiling_caps_throughput():
    wire = mini_sweep(ServerSpec.nio(1), NARROW_NET, clients=(20, 160, 320))
    giga = mini_sweep(ServerSpec.nio(1), SLOW_UP, clients=(20, 160, 320))
    # The narrow wire caps well below the CPU-bound plateau.
    assert wire.peak_throughput < 0.7 * giga.peak_throughput
    # And its plateau corresponds to the link: ~0.47 MB/s of payload.
    top = wire.points[-1]
    assert top.bandwidth_mbytes_per_s == pytest.approx(0.47, rel=0.4)


def test_fig5_shape_nio_at_least_matches_httpd_on_saturated_wire():
    wire_nio = mini_sweep(ServerSpec.nio(1), NARROW_NET, clients=(320,))
    wire_httpd = mini_sweep(ServerSpec.httpd(256), NARROW_NET, clients=(320,))
    assert wire_nio.peak_throughput >= 0.9 * wire_httpd.peak_throughput


def test_fig6_shape_response_times_converge_when_wire_bound():
    nio = mini_sweep(ServerSpec.nio(1), NARROW_NET, clients=(240,))
    httpd = mini_sweep(ServerSpec.httpd(256), NARROW_NET, clients=(240,))
    # Both dictated by the network: same order of magnitude.
    ratio = nio.response_times_ms[0] / max(httpd.response_times_ms[0], 1e-9)
    assert 0.2 < ratio < 5.0


# ---------------------------------------------------------------------------
# figure 7-10 shapes: SMP scaling
# ---------------------------------------------------------------------------

def test_fig9_shape_smp_roughly_doubles_throughput(nio_up):
    smp = mini_sweep(ServerSpec.nio(2), SLOW_SMP)
    factor = smp.peak_throughput / nio_up.peak_throughput
    assert 1.5 < factor < 2.5


def test_fig10_shape_smp_cuts_saturated_response_time(nio_up):
    smp = mini_sweep(ServerSpec.nio(2), SLOW_SMP)
    assert smp.response_times_ms[-1] < nio_up.response_times_ms[-1]


def test_fig7_shape_nio_workers_equivalent_on_smp():
    two = mini_sweep(ServerSpec.nio(2), SLOW_SMP, clients=(240,))
    four = mini_sweep(ServerSpec.nio(4), SLOW_SMP, clients=(240,))
    ratio = two.peak_throughput / four.peak_throughput
    assert 0.9 < ratio < 1.15


# ---------------------------------------------------------------------------
# crossover analysis used in EXPERIMENTS.md
# ---------------------------------------------------------------------------

def test_crossover_helper_on_real_sweeps(nio_up, httpd_up):
    knee = find_crossover(
        nio_up.clients, nio_up.throughputs, httpd_up.throughputs
    )
    # Either the curves never cross in range or the knee is interior.
    if knee is not None:
        assert CLIENTS[0] <= knee <= CLIENTS[-1]
