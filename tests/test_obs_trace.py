"""Unit tests for causal request traces and exact attribution.

The load-bearing property: per-segment and per-tier attribution
float-sums back to the measured end-to-end response time with tolerance
zero, because :func:`exact_partition` polishes the residual part ULP by
ULP until the insertion-order sum lands on the total bit for bit.
"""

import math

import pytest

from repro.obs.spans import ConnSpan
from repro.obs.trace import (
    SEGMENT_TIERS,
    ClusterTracer,
    RequestTrace,
    derive_span_id,
    derive_trace_id,
    exact_partition,
    render_waterfall,
    request_traces_from_span,
    traces_from_jsonl,
    traces_to_chrome_trace,
    traces_to_jsonl,
)

# -- exact_partition ------------------------------------------------------

#: Adversarial (total, parts) pairs: classic float-rounding traps where a
#: naive per-part split would not sum back to the total.
ADVERSARIAL = [
    (0.3, [("a", 0.1), ("b", 0.1), ("c", 0.1)]),
    (1.0, [(f"a{i}", 0.1) for i in range(7)] + [("b", 0.3)]),
    (1e-9, [("a", 3.33e-10), ("b", 3.33e-10), ("c", 3.34e-10)]),
    (1e16 + 2.0, [("a", 1e16), ("b", 1.0), ("c", 1.0)]),
    (2.5000000000000004, [("a", 0.7), ("b", 0.9), ("c", 0.9)]),
    (5.0, [("only", 5.0)]),
    (0.0, [("a", 0.0), ("b", 0.0)]),
    (math.pi, [("a", 1.0), ("b", 1.1), ("c", math.pi - 2.1)]),
]


@pytest.mark.parametrize("total,parts", ADVERSARIAL)
def test_exact_partition_sums_bit_for_bit(total, parts):
    out = exact_partition(total, parts)
    s = 0.0
    for value in out.values():
        s += value
    assert s == total  # tolerance 0, not approx


def test_exact_partition_keeps_all_but_last_verbatim():
    parts = [("a", 0.125), ("b", 0.25), ("c", 0.1)]
    out = exact_partition(0.5, parts)
    assert out["a"] == 0.125
    assert out["b"] == 0.25
    # Only the last part absorbs the residual.
    assert list(out) == ["a", "b", "c"]


def test_exact_partition_empty():
    assert exact_partition(1.0, []) == {}


# -- id derivation --------------------------------------------------------

def test_derived_ids_are_deterministic_and_distinct():
    a = derive_trace_id(7, "r0", 12)
    assert a == derive_trace_id(7, "r0", 12)
    assert len(a) == 16 and int(a, 16) >= 0
    assert a != derive_trace_id(7, "r0", 13)
    assert a != derive_trace_id(7, "r1", 12)
    assert a != derive_trace_id(8, "r0", 12)
    s = derive_span_id(a, "req0")
    assert len(s) == 16 and s != derive_span_id(a, "req1")


# -- span matching --------------------------------------------------------

def _span(cid, events):
    span = ConnSpan(cid, events[0][1])
    span.events = list(events)
    return span


def test_request_traces_match_pipelined_requests_fifo():
    # Two completed requests pipelined on one connection, plus a third
    # req_sent with no reply (cut off) that must not yield a trace.
    span = _span(5, [
        ("req_sent", 1.0), ("req_arrive", 1.1), ("svc_start", 1.2),
        ("svc_end", 1.3), ("tx_start", 1.35), ("reply_done", 1.5),
        ("req_sent", 2.0), ("req_arrive", 2.2), ("svc_start", 2.3),
        ("svc_end", 2.5), ("tx_start", 2.5), ("reply_done", 2.9),
        ("req_sent", 3.0),
    ])
    traces = request_traces_from_span(span, seed=7, rid="r1", wan_class="wan")
    assert len(traces) == 2
    first, second = traces
    assert first.trace_id == second.trace_id == derive_trace_id(7, "r1", 5)
    assert (first.index, second.index) == (0, 1)
    assert first.response_time == 1.5 - 1.0
    assert second.response_time == 2.9 - 2.0
    # FIFO pairing: the i-th req_sent got the i-th mark of every phase.
    assert dict(second.bounds)["replica_service"] == 2.5
    assert SEGMENT_TIERS["replica_service"] == "replica"


def test_attribution_and_by_tier_sum_exactly():
    span = _span(9, [
        ("req_sent", 0.1), ("req_arrive", 0.30000000000000004),
        ("svc_start", 0.4), ("svc_end", 0.7999999999999999),
        ("tx_start", 0.8), ("reply_done", 1.2000000000000002),
    ])
    (trace,) = request_traces_from_span(span, 42, "r2", "dsl")
    for split in (trace.attribution(), trace.by_tier()):
        s = 0.0
        for value in split.values():
            s += value
        assert s == trace.response_time
    tiers = trace.by_tier()
    # Replica traces lead with the explicit zero balancer row.
    assert list(tiers)[0] == "balancer"
    assert tiers["balancer"] == 0.0
    assert set(tiers) == {"balancer", "wan", "replica"}


def test_segments_clamp_non_monotone_marks():
    trace = RequestTrace(
        "0" * 16, "r0", "wan", 1, 0, 1.0,
        (("wan_up", 1.5), ("replica_queue", 1.4), ("transmit", 2.0)),
    )
    segs = trace.segments()
    assert all(start <= end for _, start, end in segs)
    # The clamped segment collapses to zero width, not negative.
    assert segs[1] == ("replica_queue", 1.5, 1.5)
    s = 0.0
    for value in trace.attribution().values():
        s += value
    assert s == trace.response_time


def test_empty_bounds_rejected():
    with pytest.raises(ValueError):
        RequestTrace("0" * 16, "r0", "wan", 1, 0, 1.0, ())


# -- tracer ---------------------------------------------------------------

def test_cache_hit_traces_are_deterministic_and_exact():
    tracer = ClusterTracer(seed=3)
    tracer.record_cache_hit("wan", 1.0, 1.2, 1.25, 1.5)
    tracer.record_cache_hit("wan", 2.0, 2.1, 2.15, 2.4)
    a, b = tracer.traces
    assert a.rid == b.rid == "cache"
    assert (a.cid, b.cid) == (-1, -1)
    assert a.trace_id == derive_trace_id(3, "cache", 0)
    assert b.trace_id == derive_trace_id(3, "cache", 1)
    tiers = a.by_tier()
    # No balancer row for cache hits; the path is wan -> cache -> wan.
    assert set(tiers) == {"wan", "cache"}
    s = 0.0
    for value in tiers.values():
        s += value
    assert s == a.response_time


def test_tracer_ring_eviction_is_counted():
    tracer = ClusterTracer(seed=1, capacity=2)
    for i in range(5):
        tracer.record_cache_hit("wan", i, i + 0.1, i + 0.2, i + 0.3)
    assert tracer.recorded == 5
    assert tracer.dropped == 3
    assert len(tracer) == 2
    stats = tracer.stats()
    assert stats["trace.requests"] == 5.0
    assert stats["trace.dropped"] == 3.0
    assert stats["trace.retained"] == 2.0


def test_unregistered_span_is_skipped():
    tracer = ClusterTracer(seed=1)
    span = _span(4, [("req_sent", 1.0), ("reply_done", 1.5)])
    tracer.harvest(span)  # never registered: slowloris / unrouted
    assert len(tracer) == 0
    tracer.register(span, "r0", "wan")
    tracer.harvest(span)
    assert len(tracer) == 1
    # The route is popped on harvest: a second finish cannot double-count.
    tracer.harvest(span)
    assert len(tracer) == 1


# -- export ---------------------------------------------------------------

def _sample_traces():
    tracer = ClusterTracer(seed=11)
    span = _span(2, [
        ("req_sent", 1.0), ("req_arrive", 1.1), ("svc_start", 1.2),
        ("svc_end", 1.4), ("tx_start", 1.4), ("reply_done", 1.8),
    ])
    tracer.register(span, "r1", "dsl")
    tracer.harvest(span)
    tracer.record_cache_hit("wan", 2.0, 2.1, 2.2, 2.3)
    return list(tracer.traces)


def test_jsonl_round_trip():
    traces = _sample_traces()
    back = traces_from_jsonl(traces_to_jsonl(traces))
    assert [t.to_dict() for t in back] == [t.to_dict() for t in traces]


def test_chrome_trace_structure():
    doc = traces_to_chrome_trace(_sample_traces())
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    slices = [e for e in events if e["ph"] == "X"]
    # One process per tier (cache + r1), named for chrome://tracing.
    assert {m["args"]["name"] for m in meta} == {"tier cache", "tier r1"}
    assert slices and all(e["dur"] >= 0 for e in slices)
    assert all("trace_id" in e["args"] for e in slices)


def test_waterfall_mentions_every_segment():
    trace = _sample_traces()[0]
    art = render_waterfall(trace)
    assert trace.trace_id in art
    for name, _t in trace.bounds:
        assert name in art
