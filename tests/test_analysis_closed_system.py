"""Closed-system (interactive) law tests, including against the simulator."""

import pytest

from repro.analysis import (
    ServiceEstimate,
    closed_system_throughput_bound,
    interactive_response_time,
    knee_client_count,
)
from repro.core import Experiment, ServerSpec, WorkloadSpec
from repro.osmodel import MachineSpec


def test_interactive_response_time_identity():
    # 100 clients, 50 replies/s, 1.5 s thinking -> R = 0.5 s.
    assert interactive_response_time(100, 50.0, 1.5) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        interactive_response_time(10, 0.0, 1.0)


def test_throughput_bound_regimes():
    svc = ServiceEstimate(1e-2)  # capacity 100/s
    # Light load: the N/(Z+S) line.
    assert closed_system_throughput_bound(10, svc, think=0.99) == pytest.approx(10.0)
    # Heavy load: the C/S plateau.
    assert closed_system_throughput_bound(10_000, svc, think=0.99) == pytest.approx(100.0)
    with pytest.raises(ValueError):
        closed_system_throughput_bound(10, svc, think=-1.0)


def test_knee_is_the_asymptote_intersection():
    svc = ServiceEstimate(1e-2)
    knee = knee_client_count(svc, think=0.99)
    assert knee == pytest.approx(100.0)
    # At the knee both bounds coincide.
    light = closed_system_throughput_bound(int(knee), svc, think=0.99)
    assert light == pytest.approx(100.0, rel=0.01)


def run_nio(clients, cpu_speed=0.05):
    return Experiment(
        server=ServerSpec.nio(1),
        workload=WorkloadSpec(
            clients=clients, duration=12.0, warmup=16.0, n_files=200
        ),
        machine=MachineSpec(cpus=1, cpu_speed=cpu_speed),
        seed=42,
    ).run()


def test_simulated_underload_throughput_tracks_light_load_line():
    """Below the knee, X ~ N / (Z + S + wire): per-client rate is flat."""
    small = run_nio(20)
    large = run_nio(60)
    per_client_small = small.throughput_rps / 20
    per_client_large = large.throughput_rps / 60
    assert per_client_large == pytest.approx(per_client_small, rel=0.1)


def test_simulated_response_time_respects_interactive_law_bound():
    """Measured R obeys the interactive law up to the pipeline overlap.

    ``R_cycle = N/X - Z`` is an operational identity for non-overlapped
    residence time.  Pipelined requests in a group *overlap* their waits
    (each accrues the same wall-clock), so the per-request mean may
    exceed the cycle residual by at most the mean group size.
    """
    m = run_nio(300)  # saturated at cpu_speed=0.05
    # Mean think per request cycle: thinks/requests ratio from SurgeConfig
    # defaults (4.8 gaps incl. inter-session per ~6.4 requests).
    from repro.workload import SurgeConfig

    cfg = SurgeConfig()
    thinks_per_request = (
        cfg.groups_per_session / cfg.mean_requests_per_session()
    )
    think_per_request = thinks_per_request * cfg.think_distribution().mean()
    bound = interactive_response_time(
        300, m.throughput_rps, think_per_request
    )
    pipeline_factor = cfg.embedded_distribution().mean()
    assert m.response_time_mean <= bound * pipeline_factor * 1.05
    # And the bound is meaningful (same order of magnitude).
    assert m.response_time_mean > bound * 0.2
