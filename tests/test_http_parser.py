"""Unit tests for the incremental HTTP/1.x request parser."""

import pytest

from repro.http import ParseError, RequestParser, render_response_head


def parse_one(raw: bytes):
    reqs = RequestParser().feed(raw)
    assert len(reqs) == 1
    return reqs[0]


def test_simple_get():
    req = parse_one(b"GET /index.html HTTP/1.1\r\nHost: sut\r\n\r\n")
    assert req.method == "GET"
    assert req.target == "/index.html"
    assert req.version == "HTTP/1.1"
    assert req.headers["host"] == "sut"


def test_header_names_lowercased_and_values_stripped():
    req = parse_one(
        b"GET / HTTP/1.1\r\nHoSt:   example.org  \r\nX-Thing: a b\r\n\r\n"
    )
    assert req.headers["host"] == "example.org"
    assert req.headers["x-thing"] == "a b"


def test_incremental_feeding_byte_by_byte():
    raw = b"GET /a HTTP/1.1\r\nHost: h\r\n\r\n"
    parser = RequestParser()
    collected = []
    for i in range(len(raw)):
        collected.extend(parser.feed(raw[i:i + 1]))
    assert len(collected) == 1
    assert collected[0].target == "/a"
    assert parser.buffered_bytes == 0


def test_pipelined_requests_in_one_packet():
    raw = (
        b"GET /1 HTTP/1.1\r\nHost: h\r\n\r\n"
        b"GET /2 HTTP/1.1\r\nHost: h\r\n\r\n"
        b"GET /3 HTTP/1.1\r\nHost: h\r\n\r\n"
    )
    reqs = RequestParser().feed(raw)
    assert [r.target for r in reqs] == ["/1", "/2", "/3"]


def test_bare_lf_framing_tolerated():
    req = parse_one(b"GET /lf HTTP/1.0\nHost: h\n\n")
    assert req.target == "/lf"


def test_post_with_body():
    parser = RequestParser()
    reqs = parser.feed(
        b"POST /submit HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"
    )
    assert len(reqs) == 1
    assert reqs[0].body == b"hello"


def test_body_split_across_packets():
    parser = RequestParser()
    assert parser.feed(b"POST /s HTTP/1.1\r\nContent-Length: 6\r\n\r\nhel") == []
    reqs = parser.feed(b"lo!")
    assert len(reqs) == 1
    assert reqs[0].body == b"hello!"


def test_request_after_body_parses():
    parser = RequestParser()
    reqs = parser.feed(
        b"POST /s HTTP/1.1\r\nContent-Length: 2\r\n\r\nokGET /next HTTP/1.1\r\n\r\n"
    )
    assert [r.target for r in reqs] == ["/s", "/next"]


@pytest.mark.parametrize(
    "raw",
    [
        b"BOGUS / HTTP/1.1\r\n\r\n",  # unknown method
        b"GET /\r\n\r\n",  # missing version
        b"GET / FTP/1.0\r\n\r\n",  # bad protocol
        b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n",  # malformed header
        b"GET / HTTP/1.1\r\nContent-Length: x\r\n\r\n",  # bad length
        b"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",  # negative length
    ],
)
def test_malformed_requests_raise(raw):
    with pytest.raises(ParseError):
        RequestParser().feed(raw)


def test_oversized_head_rejected():
    parser = RequestParser()
    with pytest.raises(ParseError):
        parser.feed(b"GET /" + b"a" * 20000)


def test_keep_alive_semantics():
    http11 = parse_one(b"GET / HTTP/1.1\r\nHost: h\r\n\r\n")
    assert http11.keep_alive
    http11_close = parse_one(
        b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
    )
    assert not http11_close.keep_alive
    http10 = parse_one(b"GET / HTTP/1.0\r\nHost: h\r\n\r\n")
    assert not http10.keep_alive
    http10_ka = parse_one(
        b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"
    )
    assert http10_ka.keep_alive


def test_render_response_head_roundtrip_fields():
    head = render_response_head(200, "OK", 1234, keep_alive=True)
    text = head.decode("latin-1")
    assert text.startswith("HTTP/1.1 200 OK\r\n")
    assert "Content-Length: 1234" in text
    assert "Connection: keep-alive" in text
    assert text.endswith("\r\n\r\n")


def test_render_response_head_extra_headers():
    head = render_response_head(
        404, "Not Found", 0, keep_alive=False,
        extra_headers={"X-Custom": "yes"},
    )
    assert b"X-Custom: yes" in head
    assert b"Connection: close" in head
