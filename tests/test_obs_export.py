"""Round-trip tests for the span exporters and report renderers."""

import json

import pytest

from repro.obs import (
    PhaseProfiler,
    SpanRecorder,
    format_phase_table,
    format_registry_table,
    render_timeline,
    spans_from_jsonl,
    spans_to_chrome_trace,
    spans_to_jsonl,
)
from repro.obs.report import render_slowest


class FakeClock:
    """Manually advanced clock for deterministic exporter tests."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture()
def recorder():
    clock = FakeClock()
    rec = SpanRecorder(clock, capacity=16)

    def run(marks, status="closed"):
        span = rec.open()
        for name, t in marks:
            clock.t = t
            span.mark(name)
        rec.finish(span, status)

    run([
        ("backlog_enter", 0.5),
        ("accept", 1.0),
        ("req_arrive", 1.1),
        ("svc_start", 2.0),
        ("svc_end", 2.5),
        ("tx_start", 2.6),
        ("reply_done", 3.0),
    ])
    clock.t = 3.0
    run([("backlog_enter", 4.0)], status="connect_timeout")
    return rec


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def test_jsonl_round_trip(recorder):
    text = spans_to_jsonl(recorder.spans)
    assert len(text.splitlines()) == 2
    clones = spans_from_jsonl(text)
    for original, clone in zip(recorder.spans, clones):
        assert clone.to_dict() == original.to_dict()
    # Re-serialising the parsed spans is a fixpoint.
    assert spans_to_jsonl(clones) == text


def test_jsonl_skips_blank_lines(recorder):
    text = spans_to_jsonl(recorder.spans) + "\n\n"
    assert len(spans_from_jsonl(text)) == 2


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------

def test_chrome_trace_structure(recorder):
    trace = spans_to_chrome_trace(recorder.spans)
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    json.dumps(trace)  # must be serialisable as-is

    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert {e["name"] for e in instants} == {"closed", "connect_timeout"}
    # One track per connection, timestamps in microseconds.
    cids = {e["tid"] for e in events}
    assert cids == {0, 1}
    service = next(e for e in complete if e["name"] == "service")
    assert service["ts"] == pytest.approx(2.0 * 1e6)
    assert service["dur"] == pytest.approx(0.5 * 1e6)
    for e in complete:
        assert e["dur"] >= 0.0


def test_chrome_trace_parses_back_to_phases(recorder):
    # The exported phases are exactly the recorder's phase intervals.
    from repro.obs import phase_intervals

    trace = spans_to_chrome_trace(recorder.spans)
    by_cid = {}
    for e in trace["traceEvents"]:
        if e["ph"] == "X":
            by_cid.setdefault(e["tid"], []).append(
                (e["name"], e["ts"] / 1e6, (e["ts"] + e["dur"]) / 1e6)
            )
    for span in recorder.spans:
        expected = [
            (p, pytest.approx(a), pytest.approx(b))
            for p, a, b in phase_intervals(span)
        ]
        assert by_cid[span.cid] == expected


# ---------------------------------------------------------------------------
# report renderers
# ---------------------------------------------------------------------------

def test_format_phase_table(recorder):
    table = format_phase_table(recorder.registry)
    assert "req_service" in table
    assert "conn_failed_wait" in table


def test_format_registry_table(recorder):
    table = format_registry_table(recorder.registry)
    assert "spans_closed" in table
    assert "spans_connect_timeout" in table


def test_render_timeline_and_slowest(recorder):
    span = list(recorder.spans)[0]
    art = render_timeline(span)
    assert "service" in art
    assert art.startswith("conn 0: closed")
    out = render_slowest(recorder, n=2)
    assert out.count("conn ") == 2
    assert render_slowest(SpanRecorder(lambda: 0.0)) is None


# ---------------------------------------------------------------------------
# PhaseProfiler
# ---------------------------------------------------------------------------

def test_profiler_attribution_and_shares():
    prof = PhaseProfiler()
    prof.add("parse", 1.0)
    prof.add("service", 2.0)
    prof.add("parse", 1.0)
    assert prof.attributed == pytest.approx(4.0)
    snap = prof.snapshot(total=5.0)
    assert snap["unattributed"] == pytest.approx(1.0)
    shares = prof.shares(total=5.0)
    assert sum(shares.values()) == pytest.approx(1.0)
    assert shares["service"] == pytest.approx(0.4)


def test_profiler_merge_and_table():
    a, b = PhaseProfiler(), PhaseProfiler()
    a.add("select", 1.0)
    b.add("select", 2.0)
    b.add("transmit", 3.0)
    a.merge(b)
    assert a.cpu_seconds == {"select": 3.0, "transmit": 3.0}
    assert "select" in a.table()
    assert PhaseProfiler().table() == "(no CPU attributed)"
