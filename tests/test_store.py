"""Unit tests for the content-addressed run store (repro.core.store).

The store's contract: keys are a *stable* function of (spec, code
fingerprint) — identical across processes, interpreter restarts and
``PYTHONHASHSEED`` values — and entries survive any crash intact or not
at all (atomic writes; corrupt files read as misses).
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro.core import (
    SMP_GIGABIT,
    UP_FAST_ETHERNET,
    UP_GIGABIT,
    PointSpec,
    RunStore,
    ServerSpec,
    WorkloadSpec,
    code_fingerprint,
    default_store_dir,
    run_point,
    spec_digest,
)
from repro.core.store import canonical, metrics_from_dict, metrics_to_dict
from repro.overload import LIFO, CoDelShedder, OverloadControl, TokenBucket


def _spec(clients=10, seed=42, server=None, scenario=UP_GIGABIT):
    return PointSpec(
        server=server or ServerSpec.nio(1),
        workload=WorkloadSpec(clients=clients, duration=1.0, warmup=1.0),
        machine=scenario.machine,
        network=scenario.network,
        seed=seed,
    )


# -- digest stability ---------------------------------------------------------

def test_digest_is_deterministic_within_process():
    assert spec_digest(_spec(), "fp") == spec_digest(_spec(), "fp")


def test_digest_distinguishes_every_axis():
    base = spec_digest(_spec(), "fp")
    assert spec_digest(_spec(clients=20), "fp") != base
    assert spec_digest(_spec(seed=7), "fp") != base
    assert spec_digest(_spec(server=ServerSpec.httpd(64)), "fp") != base
    assert spec_digest(_spec(scenario=SMP_GIGABIT), "fp") != base
    assert spec_digest(_spec(scenario=UP_FAST_ETHERNET), "fp") != base
    assert spec_digest(_spec(), "other-fp") != base


def test_digest_covers_overload_config_not_state():
    bucket = OverloadControl(admission=TokenBucket(rate=500.0, burst=32.0))
    spec = _spec(server=ServerSpec("httpd", 64, overload=bucket))
    before = spec_digest(spec, "fp")
    # Run-time counters must not change the address...
    bucket.admission.admitted = 99
    bucket.admission._tokens = 0.0
    assert spec_digest(spec, "fp") == before
    # ...but configuration must.
    other = OverloadControl(admission=TokenBucket(rate=600.0, burst=32.0))
    assert spec_digest(
        _spec(server=ServerSpec("httpd", 64, overload=other)), "fp"
    ) != before


def test_digest_handles_codel_lifo():
    control = OverloadControl(
        admission=CoDelShedder(target=0.05, interval=0.5), discipline=LIFO
    )
    spec = _spec(server=ServerSpec("httpd", 64, overload=control))
    assert spec_digest(spec, "fp") == spec_digest(spec, "fp")


def test_canonical_rejects_unknown_objects():
    class Mystery:
        pass

    with pytest.raises(TypeError, match="canonicalise"):
        canonical(Mystery())


def test_digest_stable_across_processes_and_hash_seeds():
    """The satellite pin: keys survive interpreter restarts with
    different PYTHONHASHSEED values, so resume works across runs."""
    program = (
        "from repro.core import (PointSpec, ServerSpec, WorkloadSpec, "
        "UP_GIGABIT, spec_digest)\n"
        "from repro.overload import OverloadControl, TokenBucket, LIFO\n"
        "spec = PointSpec(\n"
        "    server=ServerSpec('httpd', 64, overload=OverloadControl(\n"
        "        admission=TokenBucket(rate=520.0, burst=64.0),"
        " discipline=LIFO)),\n"
        "    workload=WorkloadSpec(clients=10, duration=1.0, warmup=1.0),\n"
        "    machine=UP_GIGABIT.machine, network=UP_GIGABIT.network,\n"
        "    seed=42)\n"
        "print(spec_digest(spec, 'pinned-fp'))\n"
    )
    digests = set()
    for hash_seed in ("0", "1", "31337"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(os.path.dirname(__file__), "..", "src"),
                env.get("PYTHONPATH", ""),
            ) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True, text=True, env=env, check=True,
        )
        digests.add(out.stdout.strip())
    assert len(digests) == 1
    # And the subprocess digest matches this process's.
    assert digests == {
        spec_digest(
            _spec(server=ServerSpec("httpd", 64, overload=OverloadControl(
                admission=TokenBucket(rate=520.0, burst=64.0),
                discipline=LIFO,
            ))),
            "pinned-fp",
        )
    }


# -- code fingerprint ---------------------------------------------------------

def test_code_fingerprint_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_FINGERPRINT", "forced")
    assert code_fingerprint() == "forced"
    monkeypatch.delenv("REPRO_FINGERPRINT")
    real = code_fingerprint()
    assert real != "forced" and len(real) == 16
    assert code_fingerprint() == real  # memoized


def test_default_store_dir_env(monkeypatch):
    monkeypatch.setenv("REPRO_STORE", "/tmp/elsewhere")
    assert default_store_dir() == "/tmp/elsewhere"
    monkeypatch.delenv("REPRO_STORE")
    assert default_store_dir() == ".repro-store"


# -- RunMetrics round trip ----------------------------------------------------

def test_metrics_json_round_trip_is_equal():
    metrics = run_point(_spec(clients=15))
    data = json.loads(json.dumps(metrics_to_dict(metrics)))
    assert metrics_from_dict(data) == metrics


# -- store behaviour ----------------------------------------------------------

def test_put_get_and_counters(tmp_path):
    store = RunStore(str(tmp_path), fingerprint="fp")
    spec = _spec()
    key = store.key_for(spec)
    assert store.get(key) is None
    metrics = run_point(spec)
    store.put(key, metrics, provenance=spec.provenance())
    assert store.get(key) == metrics
    assert store.stats() == {"hits": 1, "misses": 1, "puts": 1}
    assert store.contains(key)
    assert len(store) == 1


def test_fingerprint_mismatch_is_a_miss(tmp_path):
    spec = _spec()
    old = RunStore(str(tmp_path), fingerprint="v1")
    old.put(old.key_for(spec), run_point(spec))
    new = RunStore(str(tmp_path), fingerprint="v2")
    # Same file on disk, but the fingerprint stamped inside is stale.
    assert new.get(old.key_for(spec)) is None


def test_corrupt_entry_reads_as_miss(tmp_path):
    store = RunStore(str(tmp_path), fingerprint="fp")
    spec = _spec()
    key = store.key_for(spec)
    store.put(key, run_point(spec))
    path = store.path_for(key)
    with open(path, "w") as fh:
        fh.write('{"schema": "repro-runstore/1", "metrics": {truncated')
    assert store.get(key) is None
    # ...and the bad entry is replaceable.
    store.put(key, run_point(spec))
    assert store.get(key) is not None


def test_atomic_write_leaves_no_temp_files(tmp_path):
    store = RunStore(str(tmp_path), fingerprint="fp")
    spec = _spec()
    store.put(store.key_for(spec), run_point(spec))
    leftovers = [
        name
        for _dir, _sub, files in os.walk(tmp_path)
        for name in files
        if name.endswith(".tmp")
    ]
    assert leftovers == []


def test_ls_and_gc(tmp_path):
    spec = _spec()
    v1 = RunStore(str(tmp_path), fingerprint="v1")
    v1.put(v1.key_for(spec), run_point(spec), provenance=spec.provenance())
    v2 = RunStore(str(tmp_path), fingerprint="v2")
    v2.put(v2.key_for(spec), run_point(spec), provenance=spec.provenance())

    rows = v2.ls()
    assert len(rows) == 2
    assert sorted(r["current"] for r in rows) == [False, True]
    assert {r["server"] for r in rows} == {"nio-1w"}

    # gc drops only the stale (v1) entry...
    assert v2.gc() == 1
    assert len(v2) == 1 and v2.contains(v2.key_for(spec))
    # ...and gc(all) empties the store.
    assert v2.gc(all_entries=True) == 1
    assert len(v2) == 0


def test_provenance_recorded(tmp_path):
    store = RunStore(str(tmp_path), fingerprint="fp")
    spec = _spec(clients=25)
    store.put(store.key_for(spec), run_point(spec),
              provenance=spec.provenance())
    [(_path, payload)] = list(store.entries())
    assert payload["provenance"]["server"] == "nio-1w"
    assert payload["provenance"]["clients"] == 25
    assert payload["provenance"]["scenario"] == "1cpu-1Gbps"
    assert payload["key"] == store.key_for(spec)


def test_spec_replace_changes_seed_key():
    spec = _spec(seed=42)
    replica = dataclasses.replace(spec, seed=43)
    assert spec_digest(spec, "fp") != spec_digest(replica, "fp")
