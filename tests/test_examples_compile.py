"""The example scripts must at least parse and import-resolve."""

import ast
import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_and_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} missing module docstring"
    names = {
        node.name for node in tree.body if isinstance(node, ast.FunctionDef)
    }
    assert "main" in names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Every repro import in the example must exist in the package."""
    import importlib

    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and (
            node.module == "repro" or node.module.startswith("repro.")
        ):
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} missing"
                )
