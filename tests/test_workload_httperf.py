"""Unit tests for the httperf-style emulated client against scripted servers."""

import numpy as np

from repro.http import FilePopulation
from repro.metrics import CLIENT_TIMEOUT, CONNECTION_RESET, MetricsHub
from repro.net import EOF, ListenSocket
from repro.net.link import DuplexLink
from repro.osmodel import Machine, MachineSpec
from repro.sim import Simulator
from repro.workload import (
    EmulatedClient,
    HttperfConfig,
    SurgeConfig,
    SurgeWorkload,
)


def make_stack(warmup=0.0, duration=100.0, surge=None):
    sim = Simulator()
    machine = Machine(sim, MachineSpec(cpus=1))
    listener = ListenSocket(sim, machine)
    duplex = DuplexLink(sim, 1e7, 0.0005)
    rng = np.random.default_rng(5)
    files = FilePopulation(rng, n_files=50)
    workload = SurgeWorkload(files, surge or SurgeConfig())
    metrics = MetricsHub(sim, warmup=warmup, duration=duration)
    return sim, machine, listener, duplex, workload, metrics


def spawn_client(sim, listener, duplex, workload, metrics, config=None):
    client = EmulatedClient(
        sim, 0, listener, duplex, workload, metrics,
        np.random.default_rng(17), config,
    )
    sim.process(client.run())
    return client


def echo_server(sim, listener, reply_bytes=2000, delay=0.0):
    """Accept everything; answer every request with a fixed-size reply."""

    def handle(conn):
        while True:
            req = yield from conn.server_recv()
            if req is EOF:
                conn.server_close()
                return
            if delay:
                yield sim.timeout(delay)
            yield from conn.wait_writable(reply_bytes)
            if not conn.peer_alive:
                conn.server_close()
                return
            conn.server_send_chunk(reply_bytes, last=True)

    def acceptor():
        while True:
            conn = yield from listener.accept()
            sim.process(handle(conn))

    sim.process(acceptor())


def test_client_completes_sessions_and_records_metrics():
    sim, _m, listener, duplex, workload, metrics = make_stack()
    echo_server(sim, listener)
    client = spawn_client(sim, listener, duplex, workload, metrics)
    sim.run(until=60.0)
    assert metrics.replies > 10
    assert metrics.sessions_completed >= 1
    assert metrics.connections_established >= metrics.sessions_completed
    assert metrics.errors == {}
    assert client.sessions_attempted >= metrics.sessions_completed


def test_client_timeout_on_silent_server():
    sim, _m, listener, duplex, workload, metrics = make_stack()

    def acceptor():  # accept but never reply
        while True:
            yield from listener.accept()

    sim.process(acceptor())
    spawn_client(
        sim, listener, duplex, workload, metrics,
        HttperfConfig(client_timeout=2.0),
    )
    sim.run(until=30.0)
    assert metrics.errors[CLIENT_TIMEOUT] >= 1
    assert metrics.replies == 0


def test_client_counts_reset_and_recovers():
    sim, _m, listener, duplex, workload, metrics = make_stack(
        surge=SurgeConfig(
            think_k=3.0, think_max=4.0, groups_per_session=3.0
        ),
    )

    # A server that reaps after 1 s idle: every think gap causes a reset.
    def handle(conn):
        while True:
            req = yield from conn.server_recv(idle_timeout=1.0)
            if req is None or req is EOF:
                conn.server_close()
                return
            yield from conn.wait_writable(1000)
            if not conn.peer_alive:
                conn.server_close()
                return
            conn.server_send_chunk(1000, last=True)

    def acceptor():
        while True:
            conn = yield from listener.accept()
            sim.process(handle(conn))

    sim.process(acceptor())
    spawn_client(sim, listener, duplex, workload, metrics)
    sim.run(until=120.0)
    assert metrics.errors[CONNECTION_RESET] >= 2
    # Despite resets, replies keep flowing (client reconnects).
    assert metrics.replies > 10


def test_client_gives_up_after_reset_retry_budget():
    sim, _m, listener, duplex, workload, metrics = make_stack(
        surge=SurgeConfig(think_k=2.0, think_max=3.0, groups_per_session=3.0),
    )

    # Pathological server: immediately closes every accepted connection.
    def acceptor():
        while True:
            conn = yield from listener.accept()
            conn.server_close()

    sim.process(acceptor())
    spawn_client(
        sim, listener, duplex, workload, metrics,
        HttperfConfig(client_timeout=2.0, max_reset_retries=1),
    )
    sim.run(until=40.0)
    assert metrics.errors[CONNECTION_RESET] >= 1
    assert metrics.replies == 0
    assert metrics.sessions_completed == 0


def test_connect_timeout_counts_client_timeout():
    sim, _m, listener, duplex, workload, metrics = make_stack()
    # Fill the backlog with junk connections and never accept, so SYNs drop.
    small = ListenSocket(sim, Machine(sim, MachineSpec()), backlog=1)

    from repro.net import Connection

    filler = Connection(sim, duplex, small)
    sim.process(filler.connect())
    spawn_client(
        sim, small, duplex, workload, metrics,
        HttperfConfig(client_timeout=5.0),
    )
    sim.run(until=30.0)
    assert metrics.errors[CLIENT_TIMEOUT] >= 1


def test_pipelined_group_counts_every_reply():
    surge = SurgeConfig(
        groups_per_session=1.0,  # geometric mean 1 -> mostly single groups
        embedded_alpha=0.8,  # heavy: big groups, capped at max_group_size
        max_group_size=4,
    )
    sim, _m, listener, duplex, workload, metrics = make_stack(surge=surge)
    echo_server(sim, listener)
    spawn_client(sim, listener, duplex, workload, metrics)
    sim.run(until=40.0)
    assert metrics.replies > 20
    assert metrics.errors == {}
