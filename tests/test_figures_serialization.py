"""Round-trip tests for figure-data serialisation."""

import json

from repro.core import FigureData, Series


def make_fig():
    return FigureData(
        "fig1a",
        "NIO UP throughput",
        "clients",
        "replies/s",
        [
            Series("1 thread", [60, 600], [66.4, 650.0]),
            Series("4 threads", [60, 600], [66.4, 651.2]),
        ],
        notes="demo",
    )


def test_to_dict_fields():
    d = make_fig().to_dict()
    assert d["figure_id"] == "fig1a"
    assert d["series"][0]["label"] == "1 thread"
    assert d["series"][1]["y"] == [66.4, 651.2]
    assert d["notes"] == "demo"


def test_roundtrip_through_json():
    fig = make_fig()
    restored = FigureData.from_dict(json.loads(json.dumps(fig.to_dict())))
    assert restored.figure_id == fig.figure_id
    assert restored.title == fig.title
    assert restored.notes == fig.notes
    assert len(restored.series) == 2
    for a, b in zip(restored.series, fig.series):
        assert a.label == b.label
        assert a.x == b.x
        assert a.y == b.y


def test_from_dict_missing_notes_defaults_empty():
    d = make_fig().to_dict()
    del d["notes"]
    assert FigureData.from_dict(d).notes == ""


def test_roundtrip_preserves_table_and_chart():
    fig = make_fig()
    restored = FigureData.from_dict(fig.to_dict())
    assert restored.table() == fig.table()
    assert restored.chart() == fig.chart()
