"""Documentation quality gate: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _finder, name, _ispkg in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
    if not name.split(".")[-1].startswith("_")
]


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.getmodule(obj) is not module:
            continue  # re-export; documented at its home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} lacks a module docstring"
    )


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in public_members(module):
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if not inspect.isfunction(meth):
                    continue
                if meth.__doc__ and meth.__doc__.strip():
                    continue
                # Overrides inherit their contract from a documented base.
                inherited = any(
                    (getattr(base, meth_name, None) is not None)
                    and getattr(base, meth_name).__doc__
                    for base in obj.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(f"{name}.{meth_name}")
    assert not undocumented, (
        f"{module_name}: undocumented public items: {undocumented}"
    )


def test_package_exports_resolve():
    """Everything in repro.__all__ must exist."""
    for name in repro.__all__:
        assert hasattr(repro, name), name
