"""Tests for the extended server features: dynamic pools, partitioned
selectors."""

import pytest

from repro.core import Experiment, ServerSpec, WorkloadSpec
from repro.net import ListenSocket
from repro.osmodel import Machine, MachineSpec
from repro.servers import EventDrivenServer, ThreadPoolServer
from repro.sim import Simulator


def run_spec(spec, clients=40, duration=20.0, warmup=10.0, cpus=1, seed=7):
    return Experiment(
        server=spec,
        workload=WorkloadSpec(
            clients=clients, duration=duration, warmup=warmup, n_files=100
        ),
        machine=MachineSpec(cpus=cpus),
        seed=seed,
    ).run()


# ---------------------------------------------------------------------------
# dynamic thread pool (MinSpareThreads / MaxSpareThreads)
# ---------------------------------------------------------------------------

def test_dynamic_pool_grows_under_load():
    spec = ServerSpec("httpd", 512, dynamic_pool=True)
    m = run_spec(spec, clients=120, duration=25.0, warmup=15.0)
    # Started with 64 initial threads; load forces growth.
    assert m.server_stats["live_workers"] > 64
    assert m.server_stats["live_workers"] <= 512
    assert m.replies > 100


def test_dynamic_pool_serves_like_static_when_warm():
    static = run_spec(ServerSpec.httpd(256), clients=60)
    dynamic = run_spec(ServerSpec("httpd", 256, dynamic_pool=True), clients=60)
    assert dynamic.throughput_rps == pytest.approx(
        static.throughput_rps, rel=0.15
    )


def test_dynamic_pool_shrinks_after_burst():
    sim = Simulator()
    machine = Machine(sim, MachineSpec())
    listener = ListenSocket(sim, machine)
    server = ThreadPoolServer(
        sim, machine, listener,
        pool_size=400, dynamic=True, initial_threads=300,
        min_spare=10, max_spare=50,
    )
    server.start()
    # No load at all: idle = live; the manager retires the surplus.
    sim.run(until=30.0)
    assert server.live_workers < 300
    assert machine.threads.live == server.live_workers


def test_dynamic_pool_validation():
    sim = Simulator()
    machine = Machine(sim, MachineSpec())
    listener = ListenSocket(sim, machine)
    with pytest.raises(ValueError):
        ThreadPoolServer(
            sim, machine, listener, dynamic=True, min_spare=50, max_spare=10
        )


def test_dynamic_pool_survives_thread_limit():
    """Hitting the platform thread limit degrades, never crashes."""
    sim = Simulator()
    machine = Machine(sim, MachineSpec(max_threads=80))
    listener = ListenSocket(sim, machine)
    server = ThreadPoolServer(
        sim, machine, listener,
        pool_size=500, dynamic=True, initial_threads=60, min_spare=100,
    )
    server.start()
    sim.run(until=10.0)
    assert server.live_workers <= 80
    assert server.spawn_failures > 0


# ---------------------------------------------------------------------------
# partitioned selectors
# ---------------------------------------------------------------------------

def test_partitioned_selectors_create_one_per_worker():
    sim = Simulator()
    machine = Machine(sim, MachineSpec(cpus=4))
    listener = ListenSocket(sim, machine)
    server = EventDrivenServer(
        sim, machine, listener, workers=3, selector_strategy="partitioned"
    )
    assert len(server.selectors) == 3
    shared = EventDrivenServer(
        sim, machine, listener, workers=3, selector_strategy="shared"
    )
    assert len(shared.selectors) == 1


def test_selector_strategy_validation():
    sim = Simulator()
    machine = Machine(sim, MachineSpec())
    listener = ListenSocket(sim, machine)
    with pytest.raises(ValueError):
        EventDrivenServer(
            sim, machine, listener, selector_strategy="work-stealing"
        )


def test_partitioned_strategy_serves_equivalently():
    shared = run_spec(
        ServerSpec("nio", 2, selector_strategy="shared"), clients=60, cpus=4
    )
    partitioned = run_spec(
        ServerSpec("nio", 2, selector_strategy="partitioned"),
        clients=60, cpus=4,
    )
    assert partitioned.throughput_rps == pytest.approx(
        shared.throughput_rps, rel=0.1
    )
    assert partitioned.connection_reset_rate == 0.0
    assert partitioned.server_stats["selector_strategy"] == "partitioned"


def test_partitioned_connections_spread_across_selectors():
    sim = Simulator()
    machine = Machine(sim, MachineSpec(cpus=4))
    listener = ListenSocket(sim, machine)
    server = EventDrivenServer(
        sim, machine, listener, workers=2, selector_strategy="partitioned"
    )
    server.start()

    from repro.net import Connection
    from repro.net.link import DuplexLink

    duplex = DuplexLink(sim, 1e7, 0.0002)

    def client(i):
        conn = Connection(sim, duplex, listener)
        yield from conn.connect()
        yield sim.timeout(5.0)
        conn.client_close()

    for i in range(8):
        sim.process(client(i))
    sim.run(until=2.0)
    counts = [s.registered_count for s in server.selectors]
    assert sum(counts) == 8
    assert counts[0] == counts[1] == 4  # round-robin assignment
