"""Unit tests for the processor-sharing CPU model."""

import pytest

from repro.osmodel import CPU
from repro.sim import SimulationError, Simulator


def finish_times(sim, cpu, costs, submit_times=None):
    """Submit bursts and return their completion times."""
    done = {}
    submit_times = submit_times or [0.0] * len(costs)

    def submit(idx, cost):
        ev = cpu.execute(cost)
        ev.callbacks.append(lambda _e, i=idx: done.__setitem__(i, sim.now))

    for idx, (cost, at) in enumerate(zip(costs, submit_times)):
        if at == 0.0:
            submit(idx, cost)
        else:
            sim.call_later(at, submit, idx, cost)
    sim.run()
    return [done[i] for i in range(len(costs))]


def test_single_burst_runs_at_full_speed():
    sim = Simulator()
    cpu = CPU(sim, nproc=1)
    assert finish_times(sim, cpu, [0.5]) == [0.5]


def test_two_bursts_share_one_processor():
    sim = Simulator()
    cpu = CPU(sim, nproc=1)
    # Two equal bursts sharing one CPU both finish at 2 * cost.
    times = finish_times(sim, cpu, [1.0, 1.0])
    assert times == pytest.approx([2.0, 2.0])


def test_unequal_bursts_processor_sharing():
    sim = Simulator()
    cpu = CPU(sim, nproc=1)
    # Burst A cost 1, burst B cost 2: A finishes at 2 (half rate while B
    # runs), then B has 1 unit left at full rate -> finishes at 3.
    times = finish_times(sim, cpu, [1.0, 2.0])
    assert times == pytest.approx([2.0, 3.0])


def test_two_processors_run_two_bursts_in_parallel():
    sim = Simulator()
    cpu = CPU(sim, nproc=2, smp_efficiency=1.0)
    times = finish_times(sim, cpu, [1.0, 1.0])
    assert times == pytest.approx([1.0, 1.0])


def test_burst_rate_capped_at_one_processor():
    sim = Simulator()
    cpu = CPU(sim, nproc=4, smp_efficiency=1.0)
    # A single burst cannot exploit 4 processors.
    assert finish_times(sim, cpu, [1.0]) == [1.0]


def test_late_arrival_shares_remaining_work():
    sim = Simulator()
    cpu = CPU(sim, nproc=1)
    # A(cost 2) starts at 0; B(cost 1) arrives at 1. A has 1 left; they
    # share: A finishes at 3, B at 3.
    times = finish_times(sim, cpu, [2.0, 1.0], submit_times=[0.0, 1.0])
    assert times == pytest.approx([3.0, 3.0])


def test_smp_efficiency_reduces_capacity():
    sim = Simulator()
    cpu = CPU(sim, nproc=4, smp_efficiency=1.0 / 3.0)
    # capacity = 1 + 3 * 1/3 = 2 processors for 4 bursts -> rate 1/2 each.
    times = finish_times(sim, cpu, [1.0] * 4)
    assert times == pytest.approx([2.0] * 4)


def test_capacity_factor_degrades_service():
    sim = Simulator()
    cpu = CPU(sim, nproc=1)
    cpu.set_capacity_factor(0.5)
    assert finish_times(sim, cpu, [1.0]) == pytest.approx([2.0])


def test_capacity_factor_change_mid_burst():
    sim = Simulator()
    cpu = CPU(sim, nproc=1)
    done = []
    ev = cpu.execute(1.0)
    ev.callbacks.append(lambda _e: done.append(sim.now))
    # After 0.5s halve capacity: remaining 0.5 work takes 1.0s -> ends 1.5.
    sim.call_later(0.5, cpu.set_capacity_factor, 0.5)
    sim.run()
    assert done == pytest.approx([1.5])


def test_zero_cost_completes_immediately():
    sim = Simulator()
    cpu = CPU(sim, nproc=1)
    ev = cpu.execute(0.0)
    assert ev.triggered


def test_negative_cost_rejected():
    sim = Simulator()
    cpu = CPU(sim, nproc=1)
    with pytest.raises(SimulationError):
        cpu.execute(-1.0)


def test_invalid_construction():
    sim = Simulator()
    with pytest.raises(SimulationError):
        CPU(sim, nproc=0)
    with pytest.raises(SimulationError):
        CPU(sim, nproc=2, smp_efficiency=1.5)
    cpu = CPU(sim, nproc=1)
    with pytest.raises(SimulationError):
        cpu.set_capacity_factor(0.0)


def test_utilization_tracking():
    sim = Simulator()
    cpu = CPU(sim, nproc=1)
    cpu.execute(1.0)
    sim.run(until=4.0)
    # 1 CPU-second of work over 4 seconds = 25% utilisation.
    assert cpu.utilization(4.0) == pytest.approx(0.25)


def test_utilization_saturated():
    sim = Simulator()
    cpu = CPU(sim, nproc=1)
    for _ in range(8):
        cpu.execute(1.0)
    sim.run(until=8.0)
    assert cpu.utilization(8.0) == pytest.approx(1.0)


def test_run_helper_in_process():
    sim = Simulator()
    cpu = CPU(sim, nproc=1)
    trace = []

    def proc():
        yield from cpu.run(0.25)
        trace.append(sim.now)

    sim.process(proc())
    sim.run()
    assert trace == pytest.approx([0.25])


def test_many_bursts_complete_and_conserve_work():
    sim = Simulator()
    cpu = CPU(sim, nproc=2, smp_efficiency=1.0)
    n = 200
    done = []
    for i in range(n):
        ev = cpu.execute(0.01)
        ev.callbacks.append(lambda _e: done.append(sim.now))
    sim.run()
    assert len(done) == n
    # Total work = 2.0 CPU-seconds on 2 CPUs -> finish at ~1.0s.
    assert max(done) == pytest.approx(1.0, rel=1e-6)


def test_interleaved_arrivals_conserve_total_work():
    sim = Simulator()
    cpu = CPU(sim, nproc=1)
    done = []
    for i in range(10):
        sim.call_later(
            0.05 * i,
            lambda: cpu.execute(0.1).callbacks.append(
                lambda _e: done.append(sim.now)
            ),
        )
    sim.run()
    assert len(done) == 10
    # 1.0 CPU-seconds total, first arrival at 0 -> last completion at 1.0.
    assert max(done) == pytest.approx(1.0, rel=1e-9)
