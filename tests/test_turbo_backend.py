"""Turbo backend contract: selection, fallback, and byte-level parity.

The compiled dispatch core (``repro.sim.turbo._hot``) promises to be a
pure accelerator: same heap, same pools, same wheel, same dispatch
order.  This file pins the selection machinery (env gate, auto-detect,
explicit-request failure), the drop-in surface (``backend`` property,
``timer_stats`` parity, pickling across the process-pool boundary), and
— via a hypothesis random-interleaving property — the dispatch-order
equivalence of every backend/batch combination.

Tests that need the compiled core skip (not fail) when it is absent, so
the suite stays green on toolchain-less machines; the selection and
fallback tests run everywhere.
"""

from __future__ import annotations

import concurrent.futures
import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Experiment,
    PointSpec,
    Scenario,
    ServerSpec,
    WorkloadSpec,
    run_point,
)
from repro.sim import Simulator
from repro.sim import turbo
from repro.sim.turbo import extension_available, resolve_backend

needs_turbo = pytest.mark.skipif(
    not extension_available(), reason="compiled turbo extension not built"
)


# -- backend selection --------------------------------------------------


def test_env_gate_python(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "python")
    sim = Simulator()
    assert sim.backend == "python"
    assert type(sim).__name__ == "Simulator"


@needs_turbo
def test_env_gate_turbo(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "turbo")
    sim = Simulator()
    assert sim.backend == "turbo"


@needs_turbo
def test_explicit_arg_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "python")
    assert Simulator(backend="turbo").backend == "turbo"
    monkeypatch.setenv("REPRO_KERNEL", "turbo")
    assert Simulator(backend="python").backend == "python"


def test_auto_detect(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    sim = Simulator()
    assert sim.backend == ("turbo" if extension_available() else "python")


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        Simulator(backend="cython")


def test_explicit_turbo_raises_when_extension_missing(monkeypatch):
    """REPRO_KERNEL=turbo must fail loudly, never silently measure Python."""
    monkeypatch.setattr(turbo, "_ext_checked", True)
    monkeypatch.setattr(turbo, "_ext_error", ImportError("no such module"))
    with pytest.raises(RuntimeError, match="REPRO_KERNEL=turbo"):
        resolve_backend("turbo")
    # ...while auto quietly falls back.
    assert resolve_backend("auto") == "python"
    assert resolve_backend(None) == "python"


def test_subclass_construction_not_hijacked():
    """Simulator subclasses must get their own class, not a backend."""

    class MySim(Simulator):
        pass

    assert type(MySim()) is MySim


# -- drop-in surface ----------------------------------------------------


@needs_turbo
def test_timer_stats_parity():
    """Counter bookkeeping must match, field for field."""

    def exercise(backend):
        sim = Simulator(backend=backend)
        fired = []
        timers = [
            sim.schedule_timer(2.0 + 0.001 * i, fired.append, i)
            for i in range(96)
        ]
        for t in timers[:32]:
            t.cancel()
        for t in timers[32:48]:
            t.rearm(5.0)
        sim.timeout(10.0)
        sim.run(20.0)
        stats = sim.timer_stats()
        assert stats.pop("backend") == backend
        return stats, fired

    py_stats, py_fired = exercise("python")
    tb_stats, tb_fired = exercise("turbo")
    assert py_fired == tb_fired
    assert py_stats == tb_stats


@needs_turbo
def test_peek_and_now_parity():
    for backend in ("python", "turbo"):
        sim = Simulator(backend=backend)
        sim.timeout(1.5)
        sim.call_later(0.25, lambda: None)
        assert sim.peek() == 0.25
        sim.run(1.0)
        assert sim.now == 1.0
        assert sim.peek() == 1.5


@needs_turbo
def test_kernel_fastpath_identities_under_turbo():
    """The recycling contract holds on the compiled paths too."""
    sim = Simulator(backend="turbo")

    def proc():
        t1 = yield sim.timeout(0.01, "a")
        t2 = yield sim.timeout(0.01, "b")
        return (t1, t2)

    p = sim.process(proc())
    assert sim.run_process(p) == ("a", "b")
    # Pool now holds recycled timeouts: identity reuse skips a generation.
    first = sim.timeout(0.5)
    again = sim.timeout(0.5)
    assert first is not again
    with pytest.raises(Exception, match="negative delay"):
        sim.timeout(-0.1)
    with pytest.raises(Exception, match="negative delay"):
        sim.call_later(-0.1, lambda: None)


@needs_turbo
def test_run_backwards_rejected_under_turbo():
    sim = Simulator(backend="turbo")
    sim.run(5.0)
    with pytest.raises(Exception, match="cannot run backwards"):
        sim.run(1.0)


@needs_turbo
def test_process_failure_propagates_under_turbo():
    sim = Simulator(backend="turbo")

    def boom():
        yield sim.timeout(0.1)
        raise ValueError("kaboom")

    p = sim.process(boom())
    with pytest.raises(ValueError, match="kaboom"):
        sim.run_process(p)


@needs_turbo
def test_interrupt_under_turbo():
    from repro.sim import Interrupted

    sim = Simulator(backend="turbo")
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            log.append("slept")
        except Interrupted as intr:
            log.append(("interrupted", intr.cause))

    p = sim.process(sleeper())
    sim.call_later(1.0, p.interrupt, "wake")
    sim.run()
    assert log == [("interrupted", "wake")]


# -- process-pool boundary ----------------------------------------------


@needs_turbo
def test_point_spec_roundtrip_through_pool_with_turbo(monkeypatch):
    """The parallel runner must work while turbo is the session backend.

    Simulators themselves never cross the boundary (specs and metrics
    do), so the turbo class being unpicklable-by-construction must not
    matter; each worker re-resolves its own backend.
    """
    from repro.net import NetworkSpec
    from repro.osmodel import MachineSpec

    monkeypatch.setenv("REPRO_KERNEL", "turbo")
    spec = PointSpec(
        server=ServerSpec.nio(1),
        workload=WorkloadSpec(clients=16, duration=1.0, warmup=0.5),
        machine=MachineSpec(cpus=1),
        network=NetworkSpec.gigabit(),
        seed=3,
    )
    local = run_point(spec).row()
    with concurrent.futures.ProcessPoolExecutor(max_workers=1) as pool:
        remote = pool.submit(run_point, spec).result(timeout=300).row()
    assert remote == local


# -- dispatch-order equivalence (property) ------------------------------


def _interleaving_trace(backend, ops, no_batch):
    """Drive one simulator through a random op schedule; return the trace.

    Manages REPRO_NO_BATCH directly (restoring it on exit) instead of
    via the monkeypatch fixture, so hypothesis can call this many times
    within one test function.
    """
    saved = os.environ.pop("REPRO_NO_BATCH", None)
    if no_batch:
        os.environ["REPRO_NO_BATCH"] = "1"
    try:
        return _interleaving_trace_inner(backend, ops)
    finally:
        if saved is None:
            os.environ.pop("REPRO_NO_BATCH", None)
        else:
            os.environ["REPRO_NO_BATCH"] = saved


def _interleaving_trace_inner(backend, ops):
    sim = Simulator(backend=backend)
    trace = []
    timers = []

    def fire(tag):
        trace.append((round(sim.now, 9), tag))

    def spawn(pid, delays):
        def proc():
            for i, d in enumerate(delays):
                yield sim.timeout(d)
                trace.append((round(sim.now, 9), ("proc", pid, i)))

        sim.process(proc())

    for i, (kind, a, b) in enumerate(ops):
        if kind == 0:
            sim.call_later(a, fire, ("cb", i))
        elif kind == 1:
            timers.append(sim.schedule_timer(a, fire, ("timer", i)))
        elif kind == 2 and timers:
            timers[int(b * len(timers)) % len(timers)].rearm(a)
        elif kind == 3 and timers:
            timers[int(b * len(timers)) % len(timers)].cancel()
        else:
            spawn(i, [a, b])
    sim.run()
    return trace


op_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


@needs_turbo
@given(ops=op_strategy)
@settings(max_examples=40, deadline=None)
def test_random_interleavings_dispatch_identically(ops):
    """Any mix of timeouts, timers, re-arms, cancels, and processes must
    fire in the same order on every backend/batch combination."""
    reference = _interleaving_trace("python", ops, False)
    for backend, no_batch in [
        ("python", True),
        ("turbo", False),
        ("turbo", True),
    ]:
        got = _interleaving_trace(backend, ops, no_batch)
        assert got == reference, (backend, no_batch)


@needs_turbo
def test_seeded_storm_identical_across_backends():
    """A dense seeded storm (forcing bulk wheel flushes) stays identical."""
    rng = random.Random(11)
    ops = [
        (rng.randrange(5), rng.uniform(0.0, 4.0), rng.random())
        for _ in range(400)
    ]
    reference = _interleaving_trace("python", ops, False)
    assert len(reference) > 100
    assert _interleaving_trace("turbo", ops, False) == reference


# -- whole-experiment smoke (cheap leg of the equivalence matrix) -------


@needs_turbo
def test_experiment_row_identical_quick(monkeypatch):
    rows = {}
    for backend in ("python", "turbo"):
        monkeypatch.setenv("REPRO_KERNEL", backend)
        rows[backend] = Experiment(
            server=ServerSpec.httpd(32),
            workload=WorkloadSpec(clients=48, duration=2.0, warmup=1.0),
            seed=5,
        ).run().row()
    assert rows["python"] == rows["turbo"]
