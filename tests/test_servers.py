"""Behavioural tests of the four server-architecture models.

These run miniature end-to-end experiments (tens of clients, seconds of
simulated time) and assert the *architectural* contrasts the paper is
about: thread binding vs multiplexing, idle reaping vs never reaping,
backlog blowup vs flat connection times.
"""

import pytest

from repro.core import Experiment, ServerSpec, WorkloadSpec
from repro.osmodel import MachineSpec
from repro.workload import SurgeConfig


def run_mini(
    spec,
    clients=30,
    duration=30.0,
    warmup=10.0,
    cpus=1,
    surge=None,
    seed=7,
):
    workload = WorkloadSpec(
        clients=clients,
        duration=duration,
        warmup=warmup,
        n_files=100,
        surge=surge or SurgeConfig(),
    )
    return Experiment(
        server=spec,
        workload=workload,
        machine=MachineSpec(cpus=cpus),
        seed=seed,
    ).run()


#: Think times guaranteed to outlive a 15 s idle timeout.
LONG_THINKS = SurgeConfig(think_k=20.0, think_max=25.0, groups_per_session=2.5)


# ---------------------------------------------------------------------------
# basic service
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "spec",
    [
        ServerSpec.nio(1),
        ServerSpec.nio(4),
        ServerSpec.httpd(64),
        ServerSpec.staged(2),
        ServerSpec.amped(2),
    ],
    ids=lambda s: s.label,
)
def test_every_architecture_serves_requests(spec):
    m = run_mini(spec, clients=20, duration=20.0)
    assert m.replies > 100
    assert m.throughput_rps > 5.0
    assert m.response_time_mean < 0.5
    assert m.client_timeout_rate == 0.0


def test_throughput_tracks_offered_load_when_underloaded():
    m_small = run_mini(ServerSpec.nio(1), clients=10, duration=20.0)
    m_large = run_mini(ServerSpec.nio(1), clients=40, duration=20.0)
    ratio = m_large.throughput_rps / m_small.throughput_rps
    assert 2.5 < ratio < 6.0  # ~4x clients -> ~4x replies/s


# ---------------------------------------------------------------------------
# reset behaviour (paper fig 3b)
# ---------------------------------------------------------------------------

def test_httpd_resets_on_long_thinks():
    m = run_mini(
        ServerSpec.httpd(64), clients=20, duration=60.0, warmup=20.0,
        surge=LONG_THINKS,
    )
    assert m.connection_reset_rate > 0.05
    assert m.server_stats["idle_reaps"] > 0


def test_nio_never_resets_even_on_long_thinks():
    m = run_mini(
        ServerSpec.nio(1), clients=20, duration=60.0, warmup=20.0,
        surge=LONG_THINKS,
    )
    assert m.connection_reset_rate == 0.0


def test_httpd_infinite_idle_timeout_eliminates_resets():
    m = run_mini(
        ServerSpec.httpd(64, idle_timeout=1e9), clients=20,
        duration=60.0, warmup=20.0, surge=LONG_THINKS,
    )
    assert m.connection_reset_rate == 0.0


def test_shorter_idle_timeout_increases_resets():
    thinks = SurgeConfig(think_k=6.0, think_max=12.0, groups_per_session=2.5)
    slow = run_mini(
        ServerSpec.httpd(64, idle_timeout=15.0), clients=20,
        duration=60.0, warmup=20.0, surge=thinks,
    )
    fast = run_mini(
        ServerSpec.httpd(64, idle_timeout=5.0), clients=20,
        duration=60.0, warmup=20.0, surge=thinks,
    )
    assert fast.connection_reset_rate > slow.connection_reset_rate
    assert slow.connection_reset_rate == 0.0  # thinks capped at 12 s < 15 s


# ---------------------------------------------------------------------------
# pool exhaustion (paper fig 4)
# ---------------------------------------------------------------------------

def test_httpd_small_pool_degrades_connection_time():
    small = run_mini(
        ServerSpec("httpd", 4, backlog=8), clients=60, duration=25.0
    )
    large = run_mini(ServerSpec.httpd(256), clients=60, duration=25.0)
    assert small.connection_time_mean > 10 * large.connection_time_mean
    assert small.client_timeout_rate > 0.0
    assert large.client_timeout_rate == 0.0


def test_nio_connection_time_flat_regardless_of_load():
    light = run_mini(ServerSpec.nio(1), clients=5, duration=20.0)
    heavy = run_mini(ServerSpec.nio(1), clients=60, duration=20.0)
    # Both in the sub-millisecond RTT regime.
    assert light.connection_time_mean < 0.002
    assert heavy.connection_time_mean < 0.002


def test_httpd_syn_drops_counted_under_exhaustion():
    m = run_mini(
        ServerSpec("httpd", 2, backlog=4), clients=80, duration=25.0
    )
    assert m.server_stats["syns_dropped"] > 0


def test_backlog_timeouts_without_syn_drops_when_backlog_large():
    # A big backlog absorbs the handshakes (flat connection time) but the
    # pool still cannot serve everyone: clients die waiting for replies.
    m = run_mini(ServerSpec.httpd(2), clients=80, duration=25.0)
    assert m.server_stats["syns_dropped"] == 0
    assert m.client_timeout_rate > 0.0


# ---------------------------------------------------------------------------
# threads and memory
# ---------------------------------------------------------------------------

def test_httpd_spawns_whole_pool():
    m = run_mini(ServerSpec.httpd(128), clients=10, duration=10.0)
    assert m.server_stats["threads_peak"] == 128
    assert m.server_stats["pool_size"] == 128


def test_nio_uses_workers_plus_acceptor():
    m = run_mini(ServerSpec.nio(3), clients=10, duration=10.0)
    assert m.server_stats["threads_peak"] == 4  # 3 workers + acceptor
    assert m.server_stats["workers"] == 3


def test_jvm_factor_slows_nio():
    fast = run_mini(ServerSpec.nio(1, jvm_factor=1.0), clients=40, duration=20.0)
    slow = run_mini(ServerSpec.nio(1, jvm_factor=3.0), clients=40, duration=20.0)
    assert slow.cpu_utilization > 1.5 * fast.cpu_utilization


def test_staged_reports_handoffs():
    m = run_mini(ServerSpec.staged(2), clients=20, duration=15.0)
    assert m.server_stats["stage_handoffs"] > 0


def test_amped_reports_helper_completions():
    m = run_mini(ServerSpec.amped(3), clients=20, duration=15.0)
    assert m.server_stats["io_completions"] > 0
    assert m.server_stats["helpers"] == 3


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------

def test_runs_are_deterministic_for_a_seed():
    a = run_mini(ServerSpec.nio(2), clients=25, duration=15.0, seed=11)
    b = run_mini(ServerSpec.nio(2), clients=25, duration=15.0, seed=11)
    assert a.replies == b.replies
    assert a.response_time_mean == b.response_time_mean
    assert a.errors == b.errors


def test_different_seeds_differ():
    a = run_mini(ServerSpec.nio(2), clients=25, duration=15.0, seed=11)
    b = run_mini(ServerSpec.nio(2), clients=25, duration=15.0, seed=12)
    assert a.replies != b.replies


# ---------------------------------------------------------------------------
# config validation
# ---------------------------------------------------------------------------

def test_server_spec_validation():
    with pytest.raises(ValueError):
        ServerSpec("bogus", 1)
    with pytest.raises(ValueError):
        ServerSpec("nio", 0)


def test_workload_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(clients=0)
    with pytest.raises(ValueError):
        WorkloadSpec(clients=10, duration=-1.0)
