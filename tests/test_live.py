"""Integration tests for the live (real-socket) servers and load generator."""

import socket
import time

import pytest

from repro.live import (
    AsyncioEventServer,
    DocRoot,
    ThreadPoolHttpServer,
    run_load,
)


@pytest.fixture(scope="module")
def docroot():
    return DocRoot.synthetic(n_files=12)


@pytest.fixture()
def event_server(docroot):
    server = AsyncioEventServer(docroot)
    server.start()
    yield server
    server.stop()


@pytest.fixture()
def thread_server(docroot):
    server = ThreadPoolHttpServer(docroot, pool_size=4, idle_timeout=15.0)
    server.start()
    yield server
    server.stop()


def raw_request(port, payload, read_bytes=65536, timeout=5.0):
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as s:
        s.sendall(payload)
        chunks = []
        while True:
            data = s.recv(read_bytes)
            if not data:
                break
            chunks.append(data)
            response = b"".join(chunks)
            if _complete(response):
                return response
        return b"".join(chunks)


def _complete(response: bytes) -> bool:
    if b"\r\n\r\n" not in response:
        return False
    head, _, rest = response.partition(b"\r\n\r\n")
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            return len(rest) >= int(line.split(b":")[1])
    return True


# ---------------------------------------------------------------------------
# docroot
# ---------------------------------------------------------------------------

def test_docroot_contents(docroot):
    assert len(docroot) == 12
    path = docroot.paths()[0]
    body = docroot.lookup(path)
    assert body is not None and len(body) > 0
    assert docroot.lookup("/nope") is None
    assert docroot.total_bytes == sum(
        len(docroot.lookup(p)) for p in docroot.paths()
    )


def test_docroot_write_to_disk(tmp_path, docroot):
    docroot.write_to_disk(tmp_path)
    path = docroot.paths()[0]
    on_disk = (tmp_path / path.lstrip("/")).read_bytes()
    assert on_disk == docroot.lookup(path)


# ---------------------------------------------------------------------------
# event server
# ---------------------------------------------------------------------------

def test_event_server_serves_file(event_server, docroot):
    path = docroot.paths()[0]
    resp = raw_request(
        event_server.port,
        f"GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n".encode(),
    )
    assert resp.startswith(b"HTTP/1.1 200 OK")
    body = resp.partition(b"\r\n\r\n")[2]
    assert body == docroot.lookup(path)


def test_event_server_404(event_server):
    resp = raw_request(
        event_server.port,
        b"GET /missing HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    )
    assert resp.startswith(b"HTTP/1.1 404")


def test_event_server_400_on_garbage(event_server):
    resp = raw_request(event_server.port, b"NONSENSE\r\n\r\n")
    assert resp.startswith(b"HTTP/1.1 400")


def test_event_server_keepalive_pipelining(event_server, docroot):
    p1, p2 = docroot.paths()[:2]
    payload = (
        f"GET {p1} HTTP/1.1\r\nHost: t\r\n\r\n"
        f"GET {p2} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    ).encode()
    with socket.create_connection(("127.0.0.1", event_server.port), 5.0) as s:
        s.sendall(payload)
        time.sleep(0.3)
        data = b""
        s.settimeout(2.0)
        try:
            while True:
                chunk = s.recv(65536)
                if not chunk:
                    break
                data += chunk
        except socket.timeout:
            pass
    assert data.count(b"HTTP/1.1 200 OK") == 2


# ---------------------------------------------------------------------------
# thread server
# ---------------------------------------------------------------------------

def test_thread_server_serves_file(thread_server, docroot):
    path = docroot.paths()[1]
    resp = raw_request(
        thread_server.port,
        f"GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n".encode(),
    )
    assert resp.startswith(b"HTTP/1.1 200 OK")
    assert resp.partition(b"\r\n\r\n")[2] == docroot.lookup(path)


def test_thread_server_idle_reap_resets_connection(docroot):
    server = ThreadPoolHttpServer(docroot, pool_size=2, idle_timeout=0.5)
    server.start()
    try:
        with socket.create_connection(("127.0.0.1", server.port), 5.0) as s:
            time.sleep(1.2)  # outlive the idle timeout
            # The server closed its end; we observe EOF (or a reset).
            s.settimeout(2.0)
            try:
                data = s.recv(1024)
                assert data == b""
            except ConnectionResetError:
                pass
        assert server.idle_reaps >= 1
    finally:
        server.stop()


def test_event_server_never_reaps_idle_connections(event_server):
    with socket.create_connection(("127.0.0.1", event_server.port), 5.0) as s:
        time.sleep(1.0)
        s.settimeout(0.3)
        with pytest.raises(socket.timeout):
            s.recv(1024)  # still open: no data, no EOF


# ---------------------------------------------------------------------------
# load generator against both servers
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("server_fixture", ["event_server", "thread_server"])
def test_load_generator_measures(server_fixture, request, docroot):
    server = request.getfixturevalue(server_fixture)
    stats = run_load(
        "127.0.0.1",
        server.port,
        docroot.paths()[:6],
        clients=6,
        requests_per_client=8,
    )
    assert stats.errors == 0
    assert stats.replies == 48
    assert stats.throughput_rps > 10
    assert stats.mean_latency > 0
    assert stats.latency_percentile(99) >= stats.latency_percentile(50)
    assert server.requests_served >= 48


def test_load_generator_validates_paths(event_server):
    with pytest.raises(ValueError):
        run_load("127.0.0.1", event_server.port, [], clients=1)


def test_live_stats_error_buckets():
    from repro.live import LiveStats

    stats = LiveStats(
        duration=1.0,
        connect_timeouts=1,
        connect_errors=2,
        read_timeouts=3,
        resets=4,
        other_errors=5,
    )
    assert stats.errors == 15  # total spans every bucket
    # httperf's client-timo: timeouts in either phase, nothing else.
    assert stats.client_timeouts == 4


def test_load_generator_counts_connect_errors():
    # Nothing listens on this port: every client fails in the connect
    # phase and lands in connect_errors (refused), not in resets.
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
    stats = run_load(
        "127.0.0.1", free_port, ["/f0"], clients=3, requests_per_client=1
    )
    assert stats.connect_errors == 3
    assert stats.replies == 0
    assert stats.resets == 0
    assert stats.errors == 3
