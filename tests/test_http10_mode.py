"""HTTP/1.0 (no keep-alive) mode: server and client sides together."""

import dataclasses

import pytest

from repro.core import Experiment, ServerSpec, WorkloadSpec
from repro.osmodel import MachineSpec
from repro.workload import HttperfConfig


def run_http10(spec, clients=25, duration=25.0, warmup=10.0, seed=7):
    workload = WorkloadSpec(
        clients=clients,
        duration=duration,
        warmup=warmup,
        n_files=100,
        httperf=HttperfConfig(new_connection_per_request=True),
    )
    return Experiment(
        server=spec,
        workload=workload,
        machine=MachineSpec(cpus=1),
        seed=seed,
    ).run()


@pytest.mark.parametrize(
    "spec",
    [
        ServerSpec("nio", 1, keep_alive=False),
        ServerSpec("httpd", 64, keep_alive=False),
        ServerSpec("staged", 2, keep_alive=False),
        ServerSpec("amped", 1, keep_alive=False),
    ],
    ids=lambda s: s.label,
)
def test_http10_mode_serves_without_errors(spec):
    m = run_http10(spec)
    assert m.replies > 100
    assert m.client_timeout_rate == 0.0
    assert m.connection_reset_rate == 0.0


def test_http10_opens_one_connection_per_request():
    m = run_http10(ServerSpec("nio", 1, keep_alive=False))
    # Every reply needed its own connection (plus session bookkeeping).
    assert m.connections_established >= m.replies * 0.95


def test_http11_reuses_connections():
    workload = WorkloadSpec(
        clients=25, duration=25.0, warmup=10.0, n_files=100
    )
    m = Experiment(
        server=ServerSpec.nio(1), workload=workload, seed=7
    ).run()
    # Persistent connections: ~one connection per session (~6.5 requests).
    assert m.connections_established < m.replies * 0.5


def test_http10_costs_more_cpu_per_reply():
    """The keep-alive ablation: HTTP/1.0 pays handshakes + accept/close."""
    http10 = run_http10(ServerSpec("nio", 1, keep_alive=False))
    workload = WorkloadSpec(clients=25, duration=25.0, warmup=10.0, n_files=100)
    http11 = Experiment(
        server=ServerSpec.nio(1), workload=workload, seed=7
    ).run()
    cpu_per_reply_10 = http10.cpu_utilization / max(http10.throughput_rps, 1)
    cpu_per_reply_11 = http11.cpu_utilization / max(http11.throughput_rps, 1)
    assert cpu_per_reply_10 > cpu_per_reply_11


def test_http10_requires_matching_client_mode():
    """A keep-alive client against a close-per-reply server sees resets."""
    workload = WorkloadSpec(
        clients=20, duration=25.0, warmup=10.0, n_files=100
    )
    m = Experiment(
        server=ServerSpec("httpd", 64, keep_alive=False),
        workload=workload,
        seed=7,
    ).run()
    # The client's follow-up requests on the closed connection are resets
    # (recovered transparently), so replies still flow.
    assert m.connection_reset_rate > 0.0
    assert m.replies > 50


def test_httperf_config_is_frozen_dataclass():
    cfg = HttperfConfig()
    assert dataclasses.is_dataclass(cfg)
    with pytest.raises(dataclasses.FrozenInstanceError):
        cfg.client_timeout = 5.0  # type: ignore[misc]
