#!/usr/bin/env python
"""Live demo: the same architectural contrast on real sockets.

Starts a single-threaded asyncio event-driven HTTP server (the NIO
analogue) and a blocking thread-pool HTTP server on localhost, serves the
same SURGE-derived docroot from both, and drives them with the
httperf-like load generator — first with a well-provisioned pool, then
with an under-provisioned one to show the thread-binding penalty.

Usage::

    python examples/live_demo.py
"""

from repro.live import (
    AsyncioEventServer,
    DocRoot,
    ThreadPoolHttpServer,
    run_load,
)

CLIENTS = 20
REQUESTS = 15


def drive(label: str, server, docroot: DocRoot) -> None:
    stats = run_load(
        "127.0.0.1",
        server.port,
        docroot.paths(),
        clients=CLIENTS,
        requests_per_client=REQUESTS,
    )
    print(
        f"{label:38s} {stats.throughput_rps:8.0f} replies/s | "
        f"p50 {stats.latency_percentile(50) * 1e3:7.2f} ms | "
        f"p99 {stats.latency_percentile(99) * 1e3:7.2f} ms | "
        f"errors {stats.errors}"
    )


def main() -> None:
    docroot = DocRoot.synthetic(n_files=60)
    print(
        f"docroot: {len(docroot)} files, {docroot.total_bytes / 1024:.0f} KB; "
        f"{CLIENTS} clients x {REQUESTS} requests each\n"
    )

    event = AsyncioEventServer(docroot)
    event.start()
    try:
        drive("asyncio event-driven (1 thread)", event, docroot)
    finally:
        event.stop()

    pool = ThreadPoolHttpServer(docroot, pool_size=CLIENTS)
    pool.start()
    try:
        drive(f"thread pool ({CLIENTS} threads)", pool, docroot)
    finally:
        pool.stop()

    starved = ThreadPoolHttpServer(docroot, pool_size=2)
    starved.start()
    try:
        drive("thread pool (2 threads, starved)", starved, docroot)
    finally:
        starved.stop()

    print(
        "\nThe event-driven server multiplexes every connection on ONE\n"
        "thread; the thread-pool server needs a thread per concurrent\n"
        "client, and collapses (tail latency) when the pool is smaller\n"
        "than the concurrency — the paper's figure-4 effect, live."
    )


if __name__ == "__main__":
    main()
