#!/usr/bin/env python
"""Quickstart: run one experiment of the paper and read its metrics.

Runs the two contenders — the event-driven ``nio`` server with ONE worker
thread, and the multithreaded ``httpd`` server with a 4096-thread pool —
at a moderate load on the uniprocessor / 1 Gbit scenario, and prints
httperf-style measurements for each.

Usage::

    python examples/quickstart.py [clients]
"""

import sys

from repro import Experiment, ServerSpec, WorkloadSpec, format_table


def main() -> None:
    clients = int(sys.argv[1]) if len(sys.argv) > 1 else 2400

    rows = []
    for spec in (ServerSpec.nio(1), ServerSpec.httpd(4096)):
        print(f"running {spec.label} with {clients} clients ...")
        metrics = Experiment(
            server=spec,
            workload=WorkloadSpec(clients=clients, duration=10.0, warmup=16.0),
        ).run()
        row = {"server": spec.label}
        row.update(metrics.row())
        rows.append(row)

    print()
    print(format_table(rows, title=f"UP / 1 Gbit / {clients} clients"))
    print()
    print(
        "Things to notice (the paper's headline contrasts):\n"
        "  * the nio server does this with 1 worker thread + 1 acceptor;\n"
        "    httpd needs thousands of threads for the same replies/s;\n"
        "  * nio never produces connection-reset errors (reset/s column);\n"
        "  * httpd's mean response time excludes its timeout victims."
    )


if __name__ == "__main__":
    main()
