#!/usr/bin/env python
"""Reproduce the paper's uniprocessor study (sections 4.1-4.2).

Sweeps workload intensity for the nio server (1/4/8 workers) and httpd
(512/896/4096/6000 threads) on the CPU-bounded 1 Gbit scenario, then:

* prints the throughput and response-time tables (paper figures 1-2),
* prints error and connection-time tables (paper figures 3-4),
* picks each server's best configuration the way section 4.1 does.

Usage::

    REPRO_PROFILE=quick python examples/uniprocessor_scalability.py
"""

from repro.core import (
    FigureRunner,
    ServerSpec,
    UP_GIGABIT,
    active_profile,
    best_configuration,
)


def main() -> None:
    runner = FigureRunner(profile=active_profile("quick"), verbose=True)

    for figs in (
        runner.figure_1(),
        runner.figure_2(),
        runner.figure_3(),
        runner.figure_4(),
    ):
        for fig in figs:
            print()
            print(fig.table())

    # Section 4.1's configuration study: pick the best of each family.
    nio_sweeps = [
        runner.sweep(ServerSpec.nio(w), UP_GIGABIT) for w in (1, 4, 8)
    ]
    httpd_sweeps = [
        runner.sweep(ServerSpec.httpd(p), UP_GIGABIT)
        for p in (512, 896, 4096, 6000)
    ]
    print()
    for family, sweeps in (("nio", nio_sweeps), ("httpd", httpd_sweeps)):
        winner, ranking = best_configuration(sweeps)
        print(f"best {family} configuration: {winner.label}")
        for label, capacity in ranking:
            print(f"    {label:14s} capacity ~ {capacity:8.1f} replies/s")


if __name__ == "__main__":
    main()
