#!/usr/bin/env python
"""The paper's future work: a staged (SEDA-style) pipeline on SMP.

Section 6 proposes dividing the event-driven server into pipelined stages
with dedicated threads to exploit multiprocessors.  This example runs
that staged server — plus the Flash-style AMPED variant — against the
paper's two contenders on the 4-way SMP scenario.

Usage::

    python examples/staged_pipeline.py [clients]
"""

import sys

from repro import Experiment, ServerSpec, WorkloadSpec, format_table
from repro.core import SMP_GIGABIT


def main() -> None:
    clients = int(sys.argv[1]) if len(sys.argv) > 1 else 3600

    contenders = (
        ServerSpec.nio(2),
        ServerSpec.staged(2),
        ServerSpec.amped(4),
        ServerSpec.httpd(4096),
    )
    rows = []
    for spec in contenders:
        print(f"running {spec.label} on 4-way SMP with {clients} clients ...")
        metrics = Experiment(
            server=spec,
            workload=WorkloadSpec(clients=clients, duration=10.0, warmup=16.0),
            machine=SMP_GIGABIT.machine,
            network=SMP_GIGABIT.network,
        ).run()
        row = {
            "server": spec.label,
            "threads": int(metrics.server_stats["threads_peak"]),
        }
        row.update(metrics.row())
        rows.append(row)

    print()
    print(format_table(rows, title=f"SMP / 1 Gbit / {clients} clients"))
    print(
        "\nThe staged pipeline keeps the event-driven profile (flat\n"
        "connection time, zero resets) while spreading stages across\n"
        "processors - the design the paper proposes for application\n"
        "servers. AMPED shows the Flash alternative: one loop, with\n"
        "helpers absorbing blocking file I/O."
    )


if __name__ == "__main__":
    main()
