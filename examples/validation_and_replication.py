#!/usr/bin/env python
"""Validate the simulator against queueing theory, with replication.

A simulation study is only as credible as its validation. This example
runs the nio server on a scaled-down machine (so it saturates quickly)
and checks the measurements against results that must hold for any
correctly-bookkept system:

* the **utilization law** U = X·S/C,
* the **bandwidth law** MB/s = X·E[transfer],
* the M/G/1-PS **capacity** prediction C/S against the measured plateau,
* the closed-system **knee** N* = C(Z+S)/S against where throughput bends,

then replicates one point across seeds to show confidence intervals.

Usage::

    python examples/validation_and_replication.py
"""

from repro.analysis import (
    ServiceEstimate,
    capacity_replies_per_s,
    knee_client_count,
    replicate,
    summarize_replications,
    validate_run,
)
from repro.analysis.stats import DEFAULT_GETTERS
from repro.core import Experiment, ServerSpec, WorkloadSpec
from repro.http import FilePopulation, HttpSemantics
from repro.osmodel import CostModel, MachineSpec
from repro.sim import RandomStreams
from repro.workload import SurgeConfig

CPU_SPEED = 0.05  # 5% of the calibrated CPU: saturates at ~150 replies/s
SEM = HttpSemantics()


def run(clients: int, seed: int = 42):
    return Experiment(
        server=ServerSpec.nio(1),
        workload=WorkloadSpec(
            clients=clients, duration=12.0, warmup=16.0, n_files=200
        ),
        machine=MachineSpec(cpus=1, cpu_speed=CPU_SPEED),
        seed=seed,
    ).run()


def main() -> None:
    costs = CostModel().scaled(1.0 / CPU_SPEED).scaled(1.05)  # machine + JVM
    population = FilePopulation(RandomStreams(42).stream("files"), n_files=200)
    mean_transfer = population.mean_transfer_size() + SEM.response_head_bytes
    service = ServiceEstimate.for_event_driven(costs, SEM, 16_000)

    print("analytic predictions:")
    print(f"  service demand     S  = {service.cpu_seconds * 1e3:.2f} ms")
    print(f"  capacity         C/S  = {capacity_replies_per_s(service):.0f} replies/s")
    think = SurgeConfig().think_distribution().mean()
    knee = knee_client_count(service, think)
    print(f"  saturation knee   N*  ~ {knee:.0f} clients (Z={think:.2f}s)\n")

    for clients in (40, 120, 320):
        metrics = run(clients)
        print(
            f"clients={clients:4d}: X={metrics.throughput_rps:7.1f} r/s "
            f"U={metrics.cpu_utilization * 100:5.1f}% "
            f"R={metrics.response_time_mean * 1e3:8.2f} ms"
        )
        for check in validate_run(metrics, service, 1.0, mean_transfer):
            print(f"    {check}")
    print()

    print("replication across 4 seeds (120 clients):")
    reps = replicate(
        lambda seed: run(120, seed=seed), seeds=range(4), getters=DEFAULT_GETTERS
    )
    print(summarize_replications(reps))


if __name__ == "__main__":
    main()
