#!/usr/bin/env python
"""Reproduce the paper's multiprocessor study (section 5, figures 7-10).

Finds each server's best SMP configuration, then measures how both
servers scale from the uniprocessor to the 4-way SMP — the paper's
observation is a ~2x gain for both (Linux-2.4-era SMP efficiency).

Usage::

    REPRO_PROFILE=quick python examples/smp_scaling.py
"""

from repro.core import (
    FigureRunner,
    SMP_GIGABIT,
    ServerSpec,
    UP_GIGABIT,
    active_profile,
    best_configuration,
    scaling_factor,
)


def main() -> None:
    runner = FigureRunner(profile=active_profile("quick"), verbose=True)

    for figs in (runner.figure_7(), runner.figure_8()):
        for fig in figs:
            print()
            print(fig.table())

    # Section 5.1: best SMP configurations.
    nio_smp = [runner.sweep(ServerSpec.nio(w), SMP_GIGABIT) for w in (2, 3, 4)]
    winner, ranking = best_configuration(nio_smp)
    print(f"\nbest nio SMP configuration: {winner.label}")
    for label, capacity in ranking:
        print(f"    {label:10s} capacity ~ {capacity:8.1f} replies/s")

    # Section 5.2: scaling factors 1 -> 4 CPUs.
    print()
    for name, up_spec, smp_spec in (
        ("nio", ServerSpec.nio(1), ServerSpec.nio(2)),
        ("httpd", ServerSpec.httpd(4096), ServerSpec.httpd(4096)),
    ):
        up = runner.sweep(up_spec, UP_GIGABIT)
        smp = runner.sweep(smp_spec, SMP_GIGABIT)
        print(
            f"{name:>6s}: UP capacity {max(up.throughputs):7.1f} r/s -> "
            f"SMP {max(smp.throughputs):7.1f} r/s "
            f"(x{scaling_factor(up, smp):.2f})"
        )


if __name__ == "__main__":
    main()
