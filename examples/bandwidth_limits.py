#!/usr/bin/env python
"""Reproduce the paper's limiting-factor study (section 4.3, figures 5-6).

Runs the best configuration of each server under the three network
configurations (100 Mbit, 2x100 Mbit, 1 Gbit) and reports where each
system saturates and who wins past the knee.

Usage::

    REPRO_PROFILE=quick python examples/bandwidth_limits.py
"""

from repro.core import FigureRunner, active_profile, find_crossover


def main() -> None:
    runner = FigureRunner(profile=active_profile("quick"), verbose=True)

    (fig5,) = runner.figure_5()
    (fig6,) = runner.figure_6()
    print()
    print(fig5.table())
    print()
    print(fig6.table())

    by_label = {s.label: s for s in fig5.series}
    print()
    for net in ("100Mbps", "200Mbps", "1Gbit"):
        nio = by_label[f"NIO {net}"]
        httpd = by_label[f"Httpd {net}"]
        plateau_nio = max(nio.y)
        plateau_httpd = max(httpd.y)
        knee = find_crossover(nio.x, nio.y, httpd.y)
        knee_txt = f"nio overtakes at ~{knee:.0f} clients" if knee else "no crossover sampled"
        print(
            f"{net:>8s}: nio plateau {plateau_nio:7.1f} r/s | "
            f"httpd plateau {plateau_httpd:7.1f} r/s | {knee_txt}"
        )
    print(
        "\nReading: on the bandwidth-bounded links both rise linearly to the\n"
        "wire's ceiling; httpd's reset traffic costs it a little goodput at\n"
        "the plateau. On 1 Gbit the CPU is the wall and the shapes diverge."
    )


if __name__ == "__main__":
    main()
