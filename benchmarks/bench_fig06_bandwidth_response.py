"""Paper figure 6: response time under the three network configurations.

Expected shape: when bandwidth is the bottleneck, the two servers'
response times track each other (the network dictates them); on 1 Gbit
(CPU-bounded) they diverge, nio above httpd (whose mean excludes its
many error victims).
"""


def test_figure_6_bandwidth_response(figure_runner, benchmark, emit):
    figs = benchmark.pedantic(figure_runner.figure_6, rounds=1, iterations=1)
    emit("figure_6", figs)

    (fig,) = figs
    by_label = {s.label: s for s in fig.series}

    nio_100 = by_label["NIO 100Mbps"]
    httpd_100 = by_label["Httpd 100Mbps"]
    nio_1g = by_label["NIO 1Gbit"]
    httpd_1g = by_label["Httpd 1Gbit"]

    # Bandwidth-bounded: response times rise for both servers as the link
    # saturates (queueing at the wire dominates both architectures).
    assert nio_100.y[-1] > nio_100.y[0]
    assert httpd_100.y[-1] > httpd_100.y[0]

    # CPU-bounded: nio's measured response time exceeds httpd's at the
    # saturated end (httperf excludes httpd's timeout victims).
    assert nio_1g.y[-1] > httpd_1g.y[-1]
