"""Emit the performance-trajectory artifacts BENCH_kernel.json,
BENCH_scale.json and BENCH_figures.json (see EXPERIMENTS.md for the
format).

Run as a script from the repo root::

    PYTHONPATH=src python benchmarks/bench_perf_trajectory.py \\
        --label "my-commit" --jobs 0

or via the CLI: ``python -m repro bench``.  Both delegate to
:mod:`repro.core.perf`; this wrapper just defaults the output paths to
the repo root so the artifacts land next to the other BENCH files.

When collected by pytest (``pytest benchmarks/bench_perf_trajectory.py``)
only the kernel half runs, as a cheap smoke check that the measurement
machinery works and clears the checked-in floor
(``benchmarks/perf_floor.json``, enforced properly by
``benchmarks/check_perf_floor.py`` in CI).
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_perf_trajectory_kernel_smoke():
    """measure_kernel() produces a well-formed artifact with sane rates."""
    from repro.core.perf import KERNEL_BENCHES, measure_kernel

    report = measure_kernel(n=2_000, rounds=1, label="smoke")
    assert report["schema"] == "repro-bench-kernel/2"
    assert report["kernel_backend"] in ("python", "turbo")
    assert set(report["benchmarks"]) == set(KERNEL_BENCHES)
    for name, row in report["benchmarks"].items():
        assert row["events_per_second"] > 0, name
        assert row["events"] > 0, name


def main(argv=None) -> int:
    from repro.core import perf

    argv = list(sys.argv[1:] if argv is None else argv)
    if not any(a.startswith("--kernel-out") for a in argv):
        argv += ["--kernel-out", str(REPO_ROOT / "BENCH_kernel.json")]
    if not any(a.startswith("--figures-out") for a in argv):
        argv += ["--figures-out", str(REPO_ROOT / "BENCH_figures.json")]
    if not any(a.startswith("--scale-out") for a in argv):
        argv += ["--scale-out", str(REPO_ROOT / "BENCH_scale.json")]
    return perf.main(argv)


if __name__ == "__main__":
    sys.exit(main())
