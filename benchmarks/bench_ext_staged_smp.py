"""Extension A3: the paper's future-work staged pipeline on SMP.

Runs the SEDA-style staged server and the Flash-style AMPED server next
to the paper's two contenders on the 4-way SMP scenario.  Expected: the
staged pipeline is competitive with nio (it is the paper's proposed
evolution of the same architecture), and every event-driven variant holds
connection times flat.
"""


def test_extension_staged_smp(figure_runner, benchmark, emit):
    figs = benchmark.pedantic(
        figure_runner.extension_staged_smp, rounds=1, iterations=1
    )
    emit("extension_staged_smp", figs)

    (fig,) = figs
    by_label = {s.label: s for s in fig.series}
    staged_peak = max(by_label["staged-2w"].y)
    nio_peak = max(by_label["nio-2w"].y)
    # The staged pipeline is in the same performance class as nio.
    assert staged_peak >= 0.8 * nio_peak
