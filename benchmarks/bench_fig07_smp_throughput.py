"""Paper figure 7: throughput comparison on the 4-way SMP system.

Expected shape: nio with 2/3/4 workers performs equivalently (2 is the
paper's pick); httpd with 2048/4096/6000 threads shows 4096 ~ 6000 with
2048 falling behind at high client counts (pool exhaustion).
"""


def test_figure_7_smp_throughput(figure_runner, benchmark, emit):
    figs = benchmark.pedantic(figure_runner.figure_7, rounds=1, iterations=1)
    emit("figure_7", figs)

    nio, httpd = figs
    assert len(nio.series) == 3
    assert len(httpd.series) == 3

    # The nio worker counts are within a few percent of each other.
    peaks = [max(s.y) for s in nio.series]
    assert max(peaks) <= 1.10 * min(peaks)

    # httpd-2048 falls behind the larger pools at the top load.
    httpd_2048 = next(s for s in httpd.series if s.label.startswith("2048"))
    httpd_4096 = next(s for s in httpd.series if s.label.startswith("4096"))
    assert httpd_2048.y[-1] < httpd_4096.y[-1]
