"""Paper figure 4: connection-establishment time, nio vs httpd pools.

Expected shape: nio stays flat (sub-millisecond) at every load; httpd-896
blows up when clients exceed the pool; httpd-4096/6000 degrade only near
their own limits (or not at all within the swept range).
"""


def test_figure_4_connection_time(figure_runner, benchmark, emit):
    figs = benchmark.pedantic(figure_runner.figure_4, rounds=1, iterations=1)
    emit("figure_4", figs)

    (fig,) = figs
    nio = next(s for s in fig.series if s.label.startswith("NIO"))
    httpd_896 = next(s for s in fig.series if "896" in s.label)

    # nio connection time below 1 ms at every measured load (paper: "has
    # been always below 1").
    assert all(v < 1.0 for v in nio.y)

    # httpd-896 degrades by orders of magnitude once clients > threads.
    assert max(httpd_896.y) > 100 * max(nio.y)
