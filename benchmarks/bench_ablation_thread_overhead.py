"""Ablation A1: what thread-management overhead costs the big pools.

DESIGN.md attributes part of httpd's big-pool degradation to per-thread
scheduler/memory overhead.  This ablation re-runs the 4096/6000-thread
pools with that overhead disabled: their peaks should recover, confirming
the mechanism (not the workload) produces the effect.
"""


def test_ablation_thread_overhead(figure_runner, benchmark, emit):
    figs = benchmark.pedantic(
        figure_runner.ablation_thread_overhead, rounds=1, iterations=1
    )
    emit("ablation_thread_overhead", figs)

    (fig,) = figs
    by_label = {s.label: s for s in fig.series}
    with_ovh = max(by_label["6000t"].y)
    without_ovh = max(by_label["6000t no-ovh"].y)
    # Removing the overhead recovers measurable peak throughput.
    assert without_ovh > with_ovh * 1.02
