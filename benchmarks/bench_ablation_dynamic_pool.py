"""Ablation A5: Apache's dynamic spare-thread pool vs a static pool.

A dynamic pool (Min/MaxSpareThreads) only pays stack memory and
scheduler overhead for the threads the load actually needs, so at low
load it should match the static pool's throughput while running far
fewer threads; at high load it converges to the static configuration.
"""


def test_ablation_dynamic_pool(figure_runner, benchmark, emit):
    figs = benchmark.pedantic(
        figure_runner.ablation_dynamic_pool, rounds=1, iterations=1
    )
    emit("ablation_dynamic_pool", figs)

    (fig,) = figs
    by_label = {s.label: s for s in fig.series}
    static = by_label["static 4096"]
    dynamic = by_label["dynamic (max 4096)"]
    # Low-load equivalence.
    assert dynamic.y[0] == static.y[0] or (
        abs(dynamic.y[0] - static.y[0]) / max(static.y[0], 1.0) < 0.1
    )
    # High-load: the dynamic pool reaches the same capacity class.
    assert dynamic.y[-1] > 0.8 * static.y[-1]
