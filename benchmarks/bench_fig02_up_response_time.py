"""Paper figure 2: response-time comparison on a uniprocessor system.

Expected shape: nio response time rises with workload intensity (all
clients progress concurrently); httpd's *measured* mean stays lower
because timed-out/reset victims are excluded (httperf semantics).
"""


def test_figure_2_up_response_time(figure_runner, benchmark, emit):
    figs = benchmark.pedantic(figure_runner.figure_2, rounds=1, iterations=1)
    emit("figure_2", figs)

    nio, httpd = figs
    # nio response time grows with load.
    one_worker = nio.series[0]
    assert one_worker.y[-1] > one_worker.y[0]

    # At top load, best-httpd measured response time is below best-nio
    # (the paper's "surprisingly low" observation).
    httpd_best = next(s for s in httpd.series if s.label.startswith("4096"))
    assert httpd_best.y[-1] < one_worker.y[-1]
