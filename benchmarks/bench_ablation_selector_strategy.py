"""Ablation A4: shared vs partitioned selectors for the nio server.

The paper's nio server uses one selector whose ready set all workers
drain; later event-loop designs (Netty's event-loop groups) give each
worker its own selector and assign channels round-robin.  At this scale
the two should be equivalent in throughput — the interesting check is
that neither strategy perturbs the architectural properties (zero
resets, flat connection time).
"""


def test_ablation_selector_strategy(figure_runner, benchmark, emit):
    figs = benchmark.pedantic(
        figure_runner.ablation_selector_strategy, rounds=1, iterations=1
    )
    emit("ablation_selector_strategy", figs)

    (fig,) = figs
    by_label = {s.label: s for s in fig.series}
    shared = by_label["shared selector"]
    partitioned = by_label["partitioned selectors"]
    for a, b in zip(shared.y, partitioned.y):
        if a > 100:  # skip the near-zero low-load points
            assert abs(a - b) / a < 0.10
