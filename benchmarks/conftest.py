"""Shared fixtures for the figure-regeneration benchmarks.

One :class:`FigureRunner` is shared across the whole benchmark session, so
figures that the paper derives from the same experiments (1/2/3/4, 5/6,
7/8, 9/10) reuse each other's sweeps instead of re-running them.

Profile selection: set ``REPRO_PROFILE`` to ``quick`` (default),
``standard`` (the paper's full 60-6000 client range) or ``full`` (long
measurement windows).  Set ``REPRO_JOBS`` to fan sweep points out over
that many worker processes (0 = one per CPU) — results are identical to
a serial run.  Set ``REPRO_STORE`` to a directory to mount the
content-addressed run store: points already recorded there (same spec,
same code fingerprint) are served from disk instead of re-simulated, so
a second benchmark run over unchanged code is nearly free.  Regenerated
series are printed and also written to ``benchmarks/results/<figure>.txt``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core import FigureRunner, RunStore, active_profile, resolve_jobs

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def figure_runner() -> FigureRunner:
    profile = active_profile(default="quick")
    jobs = resolve_jobs(None)  # honours REPRO_JOBS; 1 = serial
    store_dir = os.environ.get("REPRO_STORE")
    store = RunStore(store_dir) if store_dir else None
    print(
        f"\n[benchmarks] measurement profile: {profile.name} "
        f"({profile.points} sweep points, duration={profile.duration}s, "
        f"warmup={profile.warmup}s, jobs={jobs})"
    )
    if store is not None:
        print(f"[benchmarks] run store: {store.root} "
              f"({len(store)} entries, fingerprint {store.fingerprint})")
    return FigureRunner(profile=profile, verbose=True, jobs=jobs, store=store)


@pytest.fixture(scope="session")
def emit():
    """Print figure tables and persist them under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _emit(name: str, figs) -> None:
        blocks = [fig.table() for fig in figs]
        text = "\n\n".join(blocks)
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        payload = [fig.to_dict() for fig in figs]
        (RESULTS_DIR / f"{name}.json").write_text(json.dumps(payload, indent=1))

    return _emit
