"""Paper figure 10: response-time scalability from 1 to 4 CPUs.

Expected shape: at loads that saturate the uniprocessor, the SMP response
time is significantly lower for both servers (more capacity, shorter
queues).
"""


def test_figure_10_cpu_scaling_response(figure_runner, benchmark, emit):
    figs = benchmark.pedantic(figure_runner.figure_10, rounds=1, iterations=1)
    emit("figure_10", figs)

    for fig in figs:
        up = next(s for s in fig.series if s.label == "UP")
        smp = next(s for s in fig.series if s.label == "SMP")
        # Compare at the highest common load: SMP must be markedly lower.
        assert smp.y[-1] < up.y[-1]
        # And the improvement is substantial where UP is saturated.
        assert smp.y[-1] < 0.7 * up.y[-1] + 1.0
