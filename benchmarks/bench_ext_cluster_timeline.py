"""Extension: the observed cluster timeline — series, bands, SLO alerts.

Regenerates the ``extension_cluster_timeline`` figure: one observed run
of the straggler lc+cache cluster with a flash-crowd surge landing while
replica r0 rolls through drain/down/warming.  The telemetry mount turns
the run into windowed time series (per-tier p99, throughput, shed rate,
cache hit rate), replica availability bands, and burn-rate SLO alerts —
all deterministic functions of the run spec.

Asserted below (the ISSUE's acceptance bar for the timeline figure):

(a) both subfigures regenerate with their per-tier / overlay series;
(b) the availability SLO's burn-rate alert fires at a deterministic
    sim time, recorded in the figure notes ("fired at");
(c) r0's state series actually walks the restart ladder (up -> draining
    -> down -> warming) inside the window; and
(d) the runner stashes a Chrome-trace sample of the slowest requests,
    written to ``benchmarks/results/`` as a CI artifact.
"""

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def test_extension_cluster_timeline(figure_runner, benchmark, emit):
    figs = benchmark.pedantic(
        figure_runner.extension_cluster_timeline, rounds=1, iterations=1
    )
    emit("extension_cluster_timeline", figs)

    tiers, overlay = figs
    assert tiers.figure_id == "extCTa"
    assert overlay.figure_id == "extCTb"

    # (a) Per-tier p99: the cluster aggregate plus every replica and the
    # cache tier, one value per time bin.
    labels = {s.label for s in tiers.series}
    assert {"cluster", "cache", "r0", "r1", "r2"} <= labels
    n_bins = len(tiers.series[0].x)
    assert n_bins > 0
    assert all(len(s.y) == n_bins for s in tiers.series)

    # (b) The availability SLO fires deterministically; both notes pin
    # the firing time.
    assert "fired at" in tiers.notes
    assert "fired at" in overlay.notes

    # (c) The restarted replica's state series walks the whole ladder:
    # 3=up, 1=draining, 0=down, 2=warming.
    states = {s.label: s.y for s in overlay.series}["r0 state"]
    assert {3.0, 2.0, 1.0, 0.0} <= set(states)

    # (d) The Chrome-trace sample of the slowest requests is stashed on
    # the runner; persist it next to the figure tables for CI upload.
    sample = figure_runner.trace_sample
    assert sample["traceEvents"], "trace sample must contain events"
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "extension_cluster_trace_sample.json"
    out.write_text(json.dumps(sample, indent=1))
