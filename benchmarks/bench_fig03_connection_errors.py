"""Paper figure 3: client-timeout and connection-reset error rates.

Expected shape: httpd produces connection resets (15 s idle reaping vs
heavy-tailed think times) growing with the number of clients, and far more
client timeouts than nio; nio produces exactly zero resets.
"""


def test_figure_3_connection_errors(figure_runner, benchmark, emit):
    figs = benchmark.pedantic(figure_runner.figure_3, rounds=1, iterations=1)
    emit("figure_3", figs)

    timeouts, resets = figs
    nio_resets = next(s for s in resets.series if s.label == "nio")
    httpd_resets = next(s for s in resets.series if s.label == "httpd")

    # The paper's sharpest qualitative claim: nio NEVER resets.
    assert all(v == 0.0 for v in nio_resets.y)
    # httpd resets are real and grow with concurrent sessions.
    assert max(httpd_resets.y) > 0.5
    assert httpd_resets.y[-1] > httpd_resets.y[1]

    nio_timeouts = next(s for s in timeouts.series if s.label == "nio")
    httpd_timeouts = next(s for s in timeouts.series if s.label == "httpd")
    assert sum(httpd_timeouts.y) >= sum(nio_timeouts.y)
