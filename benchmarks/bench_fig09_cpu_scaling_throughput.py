"""Paper figure 9: throughput scalability from 1 to 4 CPUs (best configs).

Expected shape: both servers roughly DOUBLE their stabilized throughput
from the uniprocessor to the 4-way SMP (Linux 2.4 / JVM-era SMP
efficiency), and the two servers' SMP values sit in the same range.
"""

def test_figure_9_cpu_scaling_throughput(figure_runner, benchmark, emit):
    figs = benchmark.pedantic(figure_runner.figure_9, rounds=1, iterations=1)
    emit("figure_9", figs)

    nio, httpd = figs

    # Compare where both systems are stabilized (the top of the sweep),
    # as the paper does: "the throughput obtained by both servers on the
    # SMP environment doubles the value obtained on the uniprocessor
    # when it is stabilized".
    for fig in (nio, httpd):
        up = next(s for s in fig.series if s.label == "UP")
        smp = next(s for s in fig.series if s.label == "SMP")
        factor = max(smp.y) / max(up.y)
        assert 1.5 <= factor <= 2.5, f"{fig.figure_id}: factor={factor:.2f}"

    # The two servers' SMP capacities are in the same range.
    nio_smp = max(next(s for s in nio.series if s.label == "SMP").y)
    httpd_smp = max(next(s for s in httpd.series if s.label == "SMP").y)
    assert 0.8 <= nio_smp / httpd_smp <= 1.25
