"""Live benchmark: asyncio event server vs thread-pool server on real sockets.

A miniature of the paper's experiment on genuine TCP: the same docroot
served by a single-threaded asyncio (NIO-analogue) server and a
blocking-I/O thread-pool server, driven by the httperf-like load
generator.  Absolute numbers depend on the host; the point is that the
event-driven server sustains many concurrent connections with ONE thread
while the thread-pool server needs a thread per connection.
"""

import pytest

from repro.live import AsyncioEventServer, DocRoot, ThreadPoolHttpServer, run_load

CLIENTS = 24
REQUESTS = 12


@pytest.fixture(scope="module")
def docroot():
    return DocRoot.synthetic(n_files=30)


def drive(server, docroot):
    return run_load(
        "127.0.0.1",
        server.port,
        docroot.paths(),
        clients=CLIENTS,
        requests_per_client=REQUESTS,
    )


def test_live_event_server_throughput(benchmark, docroot):
    server = AsyncioEventServer(docroot)
    server.start()
    try:
        stats = benchmark.pedantic(
            drive, args=(server, docroot), rounds=1, iterations=1
        )
    finally:
        server.stop()
    print(
        f"\n[live] asyncio event server: {stats.throughput_rps:.0f} replies/s, "
        f"p50={stats.latency_percentile(50) * 1e3:.2f} ms, "
        f"errors={stats.errors}"
    )
    assert stats.errors == 0
    assert stats.replies == CLIENTS * REQUESTS


def test_live_thread_server_throughput(benchmark, docroot):
    # Pool sized to the concurrency, as the paper sizes httpd pools.
    server = ThreadPoolHttpServer(docroot, pool_size=CLIENTS)
    server.start()
    try:
        stats = benchmark.pedantic(
            drive, args=(server, docroot), rounds=1, iterations=1
        )
    finally:
        server.stop()
    print(
        f"\n[live] thread-pool server: {stats.throughput_rps:.0f} replies/s, "
        f"p50={stats.latency_percentile(50) * 1e3:.2f} ms, "
        f"errors={stats.errors}"
    )
    assert stats.errors == 0
    assert stats.replies == CLIENTS * REQUESTS


def test_live_thread_server_underprovisioned_pool(benchmark, docroot):
    """A pool smaller than the concurrency queues clients (paper fig 4)."""
    server = ThreadPoolHttpServer(docroot, pool_size=2)
    server.start()
    try:
        stats = benchmark.pedantic(
            drive, args=(server, docroot), rounds=1, iterations=1
        )
    finally:
        server.stop()
    print(
        f"\n[live] thread-pool (2 threads, {CLIENTS} clients): "
        f"{stats.throughput_rps:.0f} replies/s, "
        f"p90={stats.latency_percentile(90) * 1e3:.1f} ms"
    )
    assert stats.replies + stats.errors * REQUESTS >= CLIENTS * REQUESTS * 0.5
