"""Extended-report figure: bandwidth usage of the best configurations.

The paper (section 4.1) verified the 1 Gbit tests were never
bandwidth-bounded: observed usage stayed under 40 MB/s, and usage is
linear in achieved throughput.  This bench reuses the figure-1 sweeps.
"""

import numpy as np


def test_extension_bandwidth_usage(figure_runner, benchmark, emit):
    figs = benchmark.pedantic(
        figure_runner.extension_bandwidth_usage, rounds=1, iterations=1
    )
    emit("extension_bandwidth_usage", figs)

    (fig,) = figs
    for series in fig.series:
        # Paper: "the observed bandwidth usage was always under 40 MB/s".
        assert max(series.y) < 60.0

    # Linear relation between throughput and bandwidth: correlate the
    # nio bandwidth series against its throughput series.
    from repro.core import ServerSpec, UP_GIGABIT

    sweep = figure_runner.sweep(ServerSpec.nio(1), UP_GIGABIT)
    thr = np.asarray(sweep.throughputs)
    bw = np.asarray([p.bandwidth_mbytes_per_s for p in sweep.points])
    corr = np.corrcoef(thr, bw)[0, 1]
    assert corr > 0.98
