"""Micro-benchmarks of the simulation substrate itself.

These bound the cost of the hot paths every figure regeneration leans on:
raw event dispatch, processor-sharing completions, and fluid-link
transmissions.  Useful for catching performance regressions in the kernel
(the full figure suite runs ~10^7 events).
"""

from repro.net import Link
from repro.osmodel import CPU
from repro.sim import Simulator


def run_timeout_chain(n):
    sim = Simulator()
    count = [0]

    def chain():
        for _ in range(n):
            yield sim.timeout(0.001)
            count[0] += 1

    sim.process(chain())
    sim.run()
    return count[0]


def run_cpu_bursts(n):
    sim = Simulator()
    cpu = CPU(sim, nproc=2, smp_efficiency=1.0)
    done = [0]

    def fin():
        done[0] += 1

    for i in range(n):
        sim.call_later(i * 1e-4, cpu.execute_call, 5e-4, fin)
    sim.run()
    return done[0]


def run_link_transmissions(n):
    sim = Simulator()
    link = Link(sim, 1e9, 0.0002)
    done = [0]
    for _ in range(n):
        link.transmit(16_384).callbacks.append(
            lambda _e: done.__setitem__(0, done[0] + 1)
        )
    sim.run()
    return done[0]


def run_idle_timeout_storm(n, wheel=True):
    """httpd-4096 idle-timeout storm (mirrors repro.core.perf).

    4096 standing 15 s idle-reap deadlines; every batch of arrivals
    pushes its connections' deadlines back out via ``Timer.rearm``.  The
    cancel-heavy path the timing wheel exists for — ``wheel=False``
    measures the heap-only baseline (tombstone + compaction).
    """
    sim = Simulator(wheel=wheel)
    conns, batch, interval, idle = 4096, 128, 0.25, 15.0
    reaped = [0]

    def reap(i):
        reaped[0] += 1

    timers = [sim.schedule_timer(idle, reap, i) for i in range(conns)]
    state = [0, 0]

    def driver():
        pos, done = state
        take = batch if batch <= n - done else n - done
        for k in range(pos, pos + take):
            timers[k % conns].rearm(idle)
        state[0] = (pos + take) % conns
        state[1] = done + take
        if state[1] < n:
            sim.call_later(interval, driver)

    sim.call_later(interval, driver)
    sim.run(until=interval * ((n + batch - 1) // batch + 1))
    return state[1]


def test_kernel_event_dispatch(benchmark):
    n = 20_000
    result = benchmark(run_timeout_chain, n)
    assert result == n


def test_cpu_processor_sharing_station(benchmark):
    n = 10_000
    result = benchmark(run_cpu_bursts, n)
    assert result == n


def test_link_fluid_transmissions(benchmark):
    n = 20_000
    result = benchmark(run_link_transmissions, n)
    assert result == n


def test_kernel_idle_timeout_storm(benchmark):
    n = 60_000
    result = benchmark(run_idle_timeout_storm, n)
    assert result == n
