"""Micro-benchmarks of the simulation substrate itself.

These bound the cost of the hot paths every figure regeneration leans on:
raw event dispatch, processor-sharing completions, and fluid-link
transmissions.  Useful for catching performance regressions in the kernel
(the full figure suite runs ~10^7 events).
"""

from repro.net import Link
from repro.osmodel import CPU
from repro.sim import Simulator


def run_timeout_chain(n):
    sim = Simulator()
    count = [0]

    def chain():
        for _ in range(n):
            yield sim.timeout(0.001)
            count[0] += 1

    sim.process(chain())
    sim.run()
    return count[0]


def run_cpu_bursts(n):
    sim = Simulator()
    cpu = CPU(sim, nproc=2, smp_efficiency=1.0)
    done = [0]
    for i in range(n):
        sim.call_later(
            i * 1e-4,
            lambda: cpu.execute(5e-4).callbacks.append(
                lambda _e: done.__setitem__(0, done[0] + 1)
            ),
        )
    sim.run()
    return done[0]


def run_link_transmissions(n):
    sim = Simulator()
    link = Link(sim, 1e9, 0.0002)
    done = [0]
    for _ in range(n):
        link.transmit(16_384).callbacks.append(
            lambda _e: done.__setitem__(0, done[0] + 1)
        )
    sim.run()
    return done[0]


def test_kernel_event_dispatch(benchmark):
    n = 20_000
    result = benchmark(run_timeout_chain, n)
    assert result == n


def test_cpu_processor_sharing_station(benchmark):
    n = 10_000
    result = benchmark(run_cpu_bursts, n)
    assert result == n


def test_link_fluid_transmissions(benchmark):
    n = 20_000
    result = benchmark(run_link_transmissions, n)
    assert result == n
