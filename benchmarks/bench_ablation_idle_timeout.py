"""Ablation A2: the server idle timeout vs connection-reset errors.

The paper explains httpd's reset errors by its 15 s idle timeout meeting
heavy-tailed think times.  Sweeping the timeout confirms the mechanism:
shorter timeouts reset more clients; an infinite timeout resets none.
"""


def test_ablation_idle_timeout(figure_runner, benchmark, emit):
    figs = benchmark.pedantic(
        figure_runner.ablation_idle_timeout, rounds=1, iterations=1
    )
    emit("ablation_idle_timeout", figs)

    (fig,) = figs
    by_label = {s.label: s for s in fig.series}
    top = lambda label: by_label[label].y[-1]

    assert top("timeout 5s") >= top("timeout 15s")
    assert top("timeout 15s") > top("timeout inf")
    assert all(v == 0.0 for v in by_label["timeout inf"].y)
