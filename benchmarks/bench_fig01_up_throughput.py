"""Paper figure 1: throughput comparison on a uniprocessor system.

Regenerates fig 1(a) — the nio server with 1/4/8 worker threads — and
fig 1(b) — httpd2 with 512/896/4096/6000 pool threads — on the 1 Gbit,
1-CPU scenario.  Expected shape: httpd scales roughly linearly with load;
nio's best configurations reach a comparable peak with 1-2 threads.
"""


def test_figure_1_up_throughput(figure_runner, benchmark, emit):
    figs = benchmark.pedantic(figure_runner.figure_1, rounds=1, iterations=1)
    emit("figure_1", figs)

    nio, httpd = figs
    assert len(nio.series) == 3
    assert len(httpd.series) == 4

    # Shape check: the best nio config reaches the same range as the best
    # httpd config (the paper's headline claim) — within 15%.
    nio_peak = max(max(s.y) for s in nio.series)
    httpd_4096 = next(s for s in httpd.series if s.label.startswith("4096"))
    assert nio_peak >= 0.85 * max(httpd_4096.y)

    # Throughput grows with offered load in the under-loaded region.
    for series in nio.series + httpd.series:
        assert series.y[1] > series.y[0]
