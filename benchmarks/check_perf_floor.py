"""CI guard: fail when kernel events/sec regresses >30% below the floor.

Usage (as in .github/workflows/ci.yml)::

    PYTHONPATH=src pytest benchmarks/bench_kernel.py \\
        --benchmark-disable-gc --benchmark-json=bench.json
    python benchmarks/check_perf_floor.py bench.json

Reads the pytest-benchmark JSON report, converts each micro-benchmark's
fastest round into events/second, and compares against the checked-in
``benchmarks/perf_floor.json``.  Floors are keyed by kernel backend
(``python`` vs ``turbo`` — the compiled dispatch core has much higher
bars); pass ``--backend NAME`` to pin which set gates the report, or
let the script resolve the backend the benches actually ran under
(``REPRO_KERNEL`` / auto-detect, the same rule ``Simulator()`` uses).
The floors are deliberately set at about half the measured rates, and
the check only fails below 70% of a floor — so CI noise passes but a
real kernel regression does not.

Tracing-off overhead guard::

    python benchmarks/check_perf_floor.py --tracing-guard \\
        bench.json BENCH_kernel.json

The observability mount (spans, causal traces, series, SLOs) is
pay-for-use: with nothing mounted the instrumentation sites cost one
attribute load and an ``is None`` check.  This mode cross-checks the
two kernel measurements taken in the same CI job on the same machine —
the pytest micro-benchmark report and the freshly regenerated
``BENCH_kernel.json`` trajectory artifact — and fails if the pytest
rate for ``timeout_chain`` fell more than 2% (plus a fixed noise
allowance) below the trajectory rate.  Same-run, same-machine numbers
agree tightly unless unguarded per-event work sneaked onto the hot
path, so a >2% systematic gap is a pay-for-use violation.

Exit status: 0 = all benches clear the bar, 1 = regression, 2 = bad input.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: pytest-benchmark test name -> (bench key, events dispatched per round).
#: Counts must match benchmarks/bench_kernel.py.
BENCH_EVENTS = {
    "test_kernel_event_dispatch": ("timeout_chain", 20_000),
    "test_cpu_processor_sharing_station": ("cpu_bursts", 10_000),
    "test_link_fluid_transmissions": ("link_transmissions", 20_000),
    "test_kernel_idle_timeout_storm": ("idle_timeout_storm", 60_000),
    # "events" here are population sessions (benchmarks/bench_scale.py).
    "test_fluid_scale_smoke": ("scale_smoke", 50_000),
}

#: A bench fails only below this fraction of its floor (>30% regression).
TOLERANCE = 0.7

#: --tracing-guard: allowed tracing-off overhead on the kernel fast
#: path (2%), per the pay-for-use contract.
TRACING_BUDGET = 0.02

#: --tracing-guard: measurement-noise allowance between the two
#: same-machine best-of-rounds rates being compared.
TRACING_NOISE = 0.05

FLOOR_PATH = Path(__file__).resolve().parent / "perf_floor.json"


def resolve_backend_name(backend: str | None = None) -> str:
    """The backend whose floors should gate this report.

    Uses the kernel's own resolution (explicit > ``REPRO_KERNEL`` >
    auto-detect) when ``repro`` is importable; otherwise falls back to
    the env var / ``python``.
    """
    try:
        from repro.sim.turbo import resolve_backend

        return resolve_backend(backend)
    except ImportError:
        import os

        return backend or os.environ.get("REPRO_KERNEL") or "python"


def check(
    report_path: str,
    floor_path: Path = FLOOR_PATH,
    backend: str | None = None,
) -> int:
    try:
        report = json.loads(Path(report_path).read_text())
        floors = json.loads(floor_path.read_text())["floors"]
    except (OSError, KeyError, json.JSONDecodeError) as exc:
        print(f"check_perf_floor: cannot read inputs: {exc}", file=sys.stderr)
        return 2

    try:
        backend_name = resolve_backend_name(backend)
    except (RuntimeError, ValueError) as exc:
        print(f"check_perf_floor: {exc}", file=sys.stderr)
        return 2
    if backend_name in floors:
        floors = floors[backend_name]
        print(f"check_perf_floor: gating with {backend_name!r} floors")
    else:
        # repro-perf-floor/1 compatibility: a flat {bench: floor} map.
        print(
            "check_perf_floor: flat floor file (no per-backend sets); "
            f"measured backend was {backend_name!r}"
        )

    seen = set()
    failed = False
    for bench in report.get("benchmarks", []):
        name = bench.get("name", "")
        if name not in BENCH_EVENTS:
            continue
        key, events = BENCH_EVENTS[name]
        best = bench["stats"]["min"]
        rate = events / best
        floor = floors[key]
        bar = TOLERANCE * floor
        verdict = "ok" if rate >= bar else "REGRESSION"
        print(
            f"{key:>20s}: {rate:>12,.0f} ev/s "
            f"(floor {floor:,}, fail below {bar:,.0f}) {verdict}"
        )
        if rate < bar:
            failed = True
        seen.add(key)

    missing = set(floors) - seen
    if missing:
        print(
            f"check_perf_floor: report is missing benches: {sorted(missing)}",
            file=sys.stderr,
        )
        return 2
    return 1 if failed else 0


def check_tracing_guard(report_path: str, trajectory_path: str) -> int:
    """Pay-for-use guard: pytest vs trajectory ``timeout_chain`` rates.

    Both inputs come from the same CI job on the same machine; see the
    module docstring for why a systematic gap beyond the 2% budget
    (plus the noise allowance) means unguarded observability work
    landed on the kernel hot path.
    """
    try:
        report = json.loads(Path(report_path).read_text())
        trajectory = json.loads(Path(trajectory_path).read_text())
        traj_rate = trajectory["benchmarks"]["timeout_chain"][
            "events_per_second"
        ]
    except (OSError, KeyError, json.JSONDecodeError) as exc:
        print(f"check_perf_floor: cannot read inputs: {exc}", file=sys.stderr)
        return 2

    pytest_rate = None
    for bench in report.get("benchmarks", []):
        if bench.get("name") == "test_kernel_event_dispatch":
            _, events = BENCH_EVENTS["test_kernel_event_dispatch"]
            pytest_rate = events / bench["stats"]["min"]
    if pytest_rate is None:
        print(
            "check_perf_floor: report has no test_kernel_event_dispatch",
            file=sys.stderr,
        )
        return 2

    bar = traj_rate * (1.0 - TRACING_BUDGET) * (1.0 - TRACING_NOISE)
    verdict = "ok" if pytest_rate >= bar else "TRACING OVERHEAD"
    print(
        f"tracing-off guard: pytest {pytest_rate:,.0f} ev/s vs "
        f"trajectory {traj_rate:,.0f} ev/s "
        f"(fail below {bar:,.0f}) {verdict}"
    )
    return 0 if pytest_rate >= bar else 1


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    backend = None
    if "--backend" in argv:
        i = argv.index("--backend")
        if i + 1 >= len(argv):
            print(__doc__, file=sys.stderr)
            return 2
        backend = argv[i + 1]
        argv = argv[:i] + argv[i + 2:]
    if argv and argv[0] == "--tracing-guard":
        if len(argv) != 3:
            print(__doc__, file=sys.stderr)
            return 2
        return check_tracing_guard(argv[1], argv[2])
    if len(argv) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    return check(argv[0], backend=backend)


if __name__ == "__main__":
    sys.exit(main())
