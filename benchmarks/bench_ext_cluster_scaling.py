"""Extension: cluster scaling — balancer policy and cache tier at scale.

The paper measures one server; this benchmark regenerates the cluster
extension figure: three under-provisioned nio replicas (one straggler at
30% CPU speed) behind each balancer policy, with and without a 64 MB LRU
front cache, plus a flash-crowd replay of the rr-vs-lc contrast.

Acceptance for the extension, asserted below:

(a) least-connections beats round robin on steady-state p99 at the
    heaviest load — lc steers new connections away from the straggler
    while rr keeps feeding it its full share;
(b) the cache tier's goodput at peak is at least that of the same lc
    tier without the cache; and
(c) under the 600-client flash-crowd surge, lc improves p99 over rr at
    the surge peak, and the measured gain is recorded in the figure
    notes (the ISSUE's acceptance check).
"""


def test_extension_cluster_scaling(figure_runner, benchmark, emit):
    figs = benchmark.pedantic(
        figure_runner.extension_cluster_scaling, rounds=1, iterations=1
    )
    emit("extension_cluster_scaling", figs)

    goodput, p99, flash = figs
    assert goodput.figure_id == "extCLa"
    assert p99.figure_id == "extCLb"
    assert flash.figure_id == "extCLc"
    g = {s.label: s for s in goodput.series}
    p = {s.label: s for s in p99.series}
    f = {s.label: s for s in flash.series}
    assert set(g) == {"rr", "lc", "chash", "lc+cache"}

    # (a) Steady state at the heaviest load: the straggler dominates
    # round robin's tail; least connections routes around it.
    assert p["lc"].y[-1] < p["rr"].y[-1]

    # (b) The front cache never costs goodput: the Zipf-popular replies
    # it absorbs free the replicas for the long tail.
    assert max(g["lc+cache"].y) >= max(g["lc"].y)

    # (c) Flash crowd: lc beats rr at the surge peak, and the figure
    # notes record the measured improvement.
    peak = max(range(len(f["rr"].y)), key=lambda i: f["rr"].y[i])
    assert f["lc"].y[peak] < f["rr"].y[peak]
    assert "lc improves surge p99 by" in flash.notes
