"""Scale-mode smoke benchmark: a 50k-session fluid population.

One aggregated :class:`~repro.workload.fluid.FluidLoadGenerator` run —
50,000 client sessions against the best uniprocessor configuration —
exercising the whole scale path: cohort binning, budgeted
materialisation, the SYN retry ladder and batched abandonment.  The
floor check (``check_perf_floor.py``) converts the fastest round into
population-sessions per wall-clock second; a regression here means the
aggregation stopped being O(classes + bins + budget) and started
scaling with the population again.

The full 100k-1M sweep with memory accounting lives in
``repro.core.perf.measure_scale`` (-> ``BENCH_scale.json``); this is
the cheap CI canary in front of it.
"""

from repro.core.experiment import Experiment
from repro.core.params import ServerSpec, WorkloadSpec
from repro.workload.fluid import FluidConfig

SESSIONS = 50_000


def run_scale_smoke(n):
    workload = WorkloadSpec(
        clients=n, duration=6.0, warmup=6.0, fluid=FluidConfig()
    )
    metrics = Experiment(ServerSpec.nio(1), workload, seed=42).run()
    stats = metrics.server_stats
    assert stats["fluid.aggregate"] == 1
    assert stats["fluid.sessions_materialized"] > 0
    return n


def test_fluid_scale_smoke(benchmark):
    result = benchmark(run_scale_smoke, SESSIONS)
    assert result == SESSIONS
