"""Extension: overload control — deliberate shedding vs the paper's kind.

The paper's httpd sheds load *accidentally* (kernel SYN drops, idle-reap
resets); this benchmark mounts deliberate admission policies on the same
server and regenerates figure 3's error curves with and without them.

Acceptance for the extension, asserted below:

(a) the uncontrolled baseline reproduces figure 3's error-rate shape —
    resets grow with client count, client timeouts appear only past
    saturation; and
(b) at least one shedding policy (the token bucket) yields strictly
    fewer connection-reset errors at peak load while keeping goodput
    within 10% of the uncontrolled peak.
"""


def test_extension_overload_control(figure_runner, benchmark, emit):
    figs = benchmark.pedantic(
        figure_runner.extension_overload_control, rounds=1, iterations=1
    )
    emit("extension_overload_control", figs)

    resets, timeouts, goodput = figs
    assert resets.figure_id == "extOCa"
    r = {s.label: s for s in resets.series}
    t = {s.label: s for s in timeouts.series}
    g = {s.label: s for s in goodput.series}

    # (a) Figure 3 shape from the uncontrolled baseline: reset errors
    # grow with the client count and are already present well before
    # saturation; client timeouts only blow up at extreme load.
    base_resets = r["httpd"].y
    assert base_resets[-1] > 0.0
    assert base_resets[-1] > base_resets[1] > base_resets[0]
    base_timeouts = t["httpd"].y
    assert max(base_timeouts[:3]) == 0.0  # clean below saturation
    assert base_timeouts[-1] > 1.0  # explodes at the heaviest load

    # (b) Token-bucket admission at peak load: strictly fewer resets,
    # goodput within 10% of the best the uncontrolled server ever does.
    tb_resets = r["httpd+token-bucket"].y
    assert tb_resets[-1] < base_resets[-1]
    uncontrolled_peak = max(g["httpd"].y)
    assert g["httpd+token-bucket"].y[-1] >= 0.9 * uncontrolled_peak
