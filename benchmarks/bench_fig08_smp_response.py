"""Paper figure 8: response-time comparison on the 4-way SMP system.

Expected shape: with 4 CPUs the saturation point moves out, so response
times stay low deeper into the client range than on the uniprocessor;
httpd's measured values remain at or below nio's (error exclusion).
"""


def test_figure_8_smp_response(figure_runner, benchmark, emit):
    figs = benchmark.pedantic(figure_runner.figure_8, rounds=1, iterations=1)
    emit("figure_8", figs)

    nio, httpd = figs
    nio_2w = nio.series[0]
    # Mid-range (well under SMP capacity): response times in the
    # millisecond regime.
    mid = len(nio_2w.y) // 2
    assert nio_2w.y[mid] < 100.0

    httpd_4096 = next(s for s in httpd.series if s.label.startswith("4096"))
    assert httpd_4096.y[-1] <= nio_2w.y[-1] * 1.5
