"""Paper figure 5: throughput under 100 Mbit / 200 Mbit / 1 Gbit links.

Expected shape: on the bandwidth-bounded configurations both servers climb
linearly to the bandwidth ceiling, then flatten — with nio at or slightly
above httpd at the plateau (httpd's resets add network load).  On 1 Gbit,
the CPU is the bottleneck and both reach far higher reply rates.
"""

from repro.core import find_crossover


def test_figure_5_bandwidth_throughput(figure_runner, benchmark, emit):
    figs = benchmark.pedantic(figure_runner.figure_5, rounds=1, iterations=1)
    emit("figure_5", figs)

    (fig,) = figs
    by_label = {s.label: s for s in fig.series}

    nio_100 = by_label["NIO 100Mbps"]
    nio_200 = by_label["NIO 200Mbps"]
    nio_1g = by_label["NIO 1Gbit"]
    httpd_100 = by_label["Httpd 100Mbps"]

    # The bandwidth ceilings order the plateaus: 100M < 200M < 1G.
    assert max(nio_100.y) < max(nio_200.y) < max(nio_1g.y)

    # 100 Mbit plateau sits near the link's payload capacity (~12 MB/s /
    # mean transfer ~16 KB => a few hundred replies/s), far below 1 Gbit.
    assert max(nio_100.y) < 0.5 * max(nio_1g.y)

    # At the saturated end, nio >= httpd on the bandwidth-bounded link.
    assert nio_100.y[-1] >= 0.95 * httpd_100.y[-1]

    # A crossover or parity exists: below saturation they are equal, so
    # any advantage appears only at/after the knee.
    knee = find_crossover(nio_100.x, nio_100.y, httpd_100.y)
    assert knee is None or knee > nio_100.x[0]
