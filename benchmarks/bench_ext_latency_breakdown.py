"""Extension: span-derived latency breakdown — where client time goes.

The paper *infers* from response-time curves (figure 2/6) that the
thread-pool server makes clients queue while the event-driven server
serves them; the span observability makes that attribution direct.  On
the bandwidth-bounded UP 100 Mbit testbed each architecture's client
time splits into *queue wait* (SYN retransmission, kernel backlog,
requests sitting unserved — including the failed connections httperf
excludes from response-time statistics) and *service* (CPU service plus
response streaming).

Acceptance, asserted below:

(a) at peak load, the paper-sized httpd pool (896 threads) spends the
    majority of its clients' time queueing — queue-wait share exceeds
    service share once failed connections are counted; and
(b) nio remains service-dominated across the whole sweep: its clients'
    time is honest work (streaming the response), not hidden waiting.
"""

import pytest


def test_extension_latency_breakdown(figure_runner, benchmark, emit):
    figs = benchmark.pedantic(
        figure_runner.extension_latency_breakdown, rounds=1, iterations=1
    )
    emit("extension_latency_breakdown", figs)

    queue, service = figs
    assert queue.figure_id == "extLBa"
    assert service.figure_id == "extLBb"
    q = {s.label: s for s in queue.series}
    s = {s.label: s for s in service.series}

    # Shares are percentages and complementary per point.
    for label in q:
        for qy, sy in zip(q[label].y, s[label].y):
            assert 0.0 <= qy <= 100.0 and 0.0 <= sy <= 100.0
            assert qy + sy == pytest.approx(100.0, abs=0.1)

    # (a) httpd-896 at peak load: queue wait dominates service time once
    # the failed connections are attributed instead of excluded.
    assert q["httpd-896t"].y[-1] > s["httpd-896t"].y[-1]
    assert q["httpd-896t"].y[-1] > 50.0

    # (b) nio stays service-dominated at every load level: the selector
    # streams all clients concurrently, so nothing queues behind a
    # busy worker.
    assert max(q["nio-1w"].y) < 50.0
    assert min(s["nio-1w"].y) > 50.0
    assert s["nio-1w"].y[-1] > q["nio-1w"].y[-1]

    # Queue share grows with offered load for the thread-limited pool.
    assert q["httpd-896t"].y[-1] > q["httpd-896t"].y[0]
