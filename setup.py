"""Legacy setup shim so `pip install -e . --no-use-pep517` works offline.

Also declares the optional compiled dispatch core (repro.sim.turbo._hot).
The Extension is marked ``optional``: a missing compiler or headers turns
the build failure into a warning and the package falls back to the
pure-Python kernel (see repro/sim/turbo/__init__.py).  Set
REPRO_NO_TURBO=1 to skip the extension entirely.
"""

import os

from setuptools import Extension, setup

ext_modules = []
if not os.environ.get("REPRO_NO_TURBO"):
    ext_modules.append(
        Extension(
            "repro.sim.turbo._hot",
            sources=["src/repro/sim/turbo/_hot.c"],
            optional=True,
            extra_compile_args=["-O2"],
        )
    )

setup(ext_modules=ext_modules)
